#include "batch/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exec/engine_spec.hpp"
#include "fault/inject.hpp"
#include "io/snapshot.hpp"
#include "obs/trace.hpp"
#include "tune/autotuner.hpp"
#include "util/affinity.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace emwd::batch {

/// Max-heap order for std::push_heap/pop_heap: higher priority first, ties
/// in submission order (larger seq compares "smaller").
struct SchedulerEntryLess {
  bool operator()(const auto& a, const auto& b) const {
    return a.priority < b.priority || (a.priority == b.priority && a.seq > b.seq);
  }
};

Scheduler::Scheduler(SchedulerConfig cfg)
    : cfg_(std::move(cfg)),
      // Default slot count: one per requested executor (so side-by-side
      // jobs get private cpu subsets even within one NUMA node), or one per
      // NUMA domain when concurrency is defaulted too.  ResourceManager
      // clamps to the cpu count.
      resources_(cfg_.host ? *cfg_.host : util::detect_host(),
                 cfg_.slots > 0 ? cfg_.slots
                                : (cfg_.concurrency > 0 ? cfg_.concurrency : 0)) {
  const int executors =
      cfg_.concurrency > 0 ? cfg_.concurrency : resources_.num_slots();
  stats_.slots = resources_.num_slots();
  stats_.executors = executors;
  pool_.set_max_idle(cfg_.max_idle_engines, cfg_.max_idle_fields);
  executors_.reserve(static_cast<std::size_t>(executors));
  for (int i = 0; i < executors; ++i) {
    executors_.emplace_back([this, i] { executor_loop(i); });
  }
}

Scheduler::~Scheduler() {
  if (!joined_) {
    cancel();
    {
      std::lock_guard<std::mutex> lock(mu_);
      closing_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : executors_) {
      if (t.joinable()) t.join();
    }
    joined_ = true;
  }
}

std::size_t Scheduler::submit(Job job) {
  std::size_t seq = 0;
  bool drop = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_) throw std::logic_error("batch::Scheduler: submit after wait_all");
    seq = results_.size();
    results_.emplace_back();
    ++stats_.submitted;
    if (cancelled_) {
      drop = true;  // record outside the lock, consistent with cancel()
    } else {
      queue_.push_back(Entry{job.priority, seq, std::move(job)});
      std::push_heap(queue_.begin(), queue_.end(), SchedulerEntryLess{});
    }
  }
  if (drop) {
    JobResult r;
    r.index = seq;
    r.name = job.name.empty() ? "job" + std::to_string(seq) : job.name;
    r.cancelled = true;
    r.error = "cancelled";
    r.error_class = "cancelled";
    finish_result(std::move(r), job.sink);
  } else {
    cv_work_.notify_one();
  }
  return seq;
}

void Scheduler::set_progress(ProgressFn fn) {
  std::lock_guard<std::recursive_mutex> lock(progress_mu_);
  progress_ = std::move(fn);
  has_progress_.store(static_cast<bool>(progress_), std::memory_order_relaxed);
}

void Scheduler::cancel() {
  std::vector<Entry> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    drained = std::move(queue_);
    queue_.clear();
  }
  // From here no executor can claim work (claiming pops under the same
  // mutex, and the queue is now empty); jobs claimed earlier — running, or
  // popped an instant before this drain — complete normally.
  cv_work_.notify_all();
  for (Entry& e : drained) {
    JobResult r;
    r.index = e.seq;
    r.name = e.job.name.empty() ? "job" + std::to_string(e.seq) : e.job.name;
    r.cancelled = true;
    r.error = "cancelled";
    r.error_class = "cancelled";
    finish_result(std::move(r), e.job.sink);
  }
}

std::vector<JobResult> Scheduler::wait_all() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (joined_) throw std::logic_error("batch::Scheduler: wait_all called twice");
    closing_ = true;
    cv_work_.notify_all();
    cv_done_.wait(lock, [&] { return done_ == stats_.submitted; });
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(results_);
}

bool Scheduler::preempt(std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = running_jobs_.find(index);
  if (it == running_jobs_.end() || !it->second->preemptible) return false;
  it->second->preempt.store(true, std::memory_order_relaxed);
  return true;
}

std::size_t Scheduler::preempt_lower_than(int priority, std::size_t max_count) {
  std::lock_guard<std::mutex> lock(mu_);
  // Lowest priority victims first: collect, sort, signal.
  std::vector<std::pair<int, RunControl*>> victims;
  for (auto& [seq, control] : running_jobs_) {
    if (control->preemptible && control->priority < priority &&
        !control->preempt.load(std::memory_order_relaxed)) {
      victims.emplace_back(control->priority, control.get());
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t signalled = 0;
  for (auto& [prio, control] : victims) {
    if (signalled == max_count) break;
    control->preempt.store(true, std::memory_order_relaxed);
    ++signalled;
  }
  return signalled;
}

std::size_t Scheduler::checkpoint_running() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t signalled = 0;
  for (auto& [seq, control] : running_jobs_) {
    if (control->can_checkpoint) {
      control->checkpoint.store(true, std::memory_order_relaxed);
      ++signalled;
    }
  }
  return signalled;
}

BatchStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BatchStats out = stats_;
  // Occupancy is read under the same mutex that claims and finishes jobs,
  // so the identity queued + running + done == submitted holds exactly in
  // every snapshot (the serve daemon's Status endpoint relies on it).
  out.queued = queue_.size();
  out.running = running_;
  for (const Entry& e : queue_) ++out.queue_depth[e.priority];
  out.pool = pool_.stats();
  out.plans = plan_cache_.stats();
  return out;
}

void Scheduler::executor_loop(int executor_id) {
  const int slot_id = resources_.slot_for_executor(executor_id);
  if (cfg_.pin_slots) {
    // Best effort; engine worker threads inherit the mask.
    util::pin_current_thread(resources_.slot(slot_id).cpus);
  }
  for (;;) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return closing_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (closing_) return;
        continue;
      }
      std::pop_heap(queue_.begin(), queue_.end(), SchedulerEntryLess{});
      entry = std::move(queue_.back());
      queue_.pop_back();
      ++running_;  // claimed under the same lock; finish_result undoes it
      if (entry.job.resume_blob || !entry.job.resume_from.empty()) ++stats_.resumed;
    }
    auto sink = entry.job.sink;
    // Register the claim's signalling surface so preempt()/
    // checkpoint_running() can reach this job while it runs.
    auto control = std::make_shared<RunControl>();
    control->priority = entry.priority;
    control->preemptible = entry.job.preemptible && entry.job.converge_tol == 0.0;
    control->can_checkpoint =
        entry.job.checkpoint_every > 0 && !entry.job.checkpoint_path.empty();
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_jobs_[entry.seq] = control;
    }
    RunOutcome out;
    {
      // A job may repin this executor (sharded NUMA binding, user setup
      // code); restore the slot mask after every job — throwing included —
      // so one job's cpuset never leaks into the next job on this thread.
      util::ScopedAffinity affinity_guard;
      out = run_job(std::move(entry.job), entry.seq, slot_id, *control);
    }
    bool requeued = false;
    bool cancelled_continuation = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_jobs_.erase(entry.seq);
      stats_.snapshots_written += static_cast<std::size_t>(out.snapshots_written);
      stats_.snapshot_bytes += out.snapshot_bytes;
      if (out.continuation) {
        // The preemption path: the job goes back to `queued` as a
        // resumable continuation under its original seq, so the occupancy
        // identity holds and the (priority, seq) heap order lets it resume
        // ahead of later same-priority submissions.  After cancel() the
        // queue must stay empty — finish it as cancelled instead.
        ++stats_.preempted;
        --running_;
        if (cancelled_) {
          cancelled_continuation = true;
        } else {
          queue_.push_back(
              Entry{out.continuation->priority, entry.seq, std::move(*out.continuation)});
          std::push_heap(queue_.begin(), queue_.end(), SchedulerEntryLess{});
          requeued = true;
        }
      }
    }
    if (requeued) {
      cv_work_.notify_one();
      continue;
    }
    if (cancelled_continuation) {
      JobResult r;
      r.index = entry.seq;
      r.name = out.result.name;
      r.cancelled = true;
      r.error = "cancelled";
    r.error_class = "cancelled";
      finish_result(std::move(r), sink);  // running_ already decremented
      continue;
    }
    finish_result(std::move(out.result), sink);
  }
}

Scheduler::RunOutcome Scheduler::run_job(Job&& job, std::size_t seq, int slot_id,
                                         RunControl& control) {
  // The submission index is the trace correlation id: every span this
  // executor (and, via ThreadTeam, the engine workers and snapshot writer)
  // records while the job runs carries args.job == seq.
  obs::ScopedCorrelation correlation(static_cast<std::int64_t>(seq));
  OBS_SPAN("sched.job", static_cast<std::int64_t>(seq));
  const int max_attempts = std::max(1, job.retry.max_attempts);
  util::Timer clock;  // spans every attempt: deadline budget + total wall clock
  // Jitter stream depends only on the submission index, so two identical
  // batches back off identically regardless of thread timing.
  util::Xoshiro256 jitter_rng(0x9e3779b97f4a7c15ull ^
                              (static_cast<std::uint64_t>(seq) * 0xff51afd7ed558ccdull));
  std::int64_t snaps = 0;
  std::int64_t snap_bytes = 0;
  int quarantined = 0;
  for (int attempt = 1;; ++attempt) {
    RunOutcome out = run_attempt(job, seq, slot_id, control, clock);
    snaps += out.snapshots_written;
    snap_bytes += out.snapshot_bytes;
    quarantined += out.result.quarantined;
    out.snapshots_written = snaps;
    out.snapshot_bytes = snap_bytes;
    out.result.quarantined = quarantined;
    out.result.attempts = attempt;
    if (out.continuation) return out;  // preempted: the continuation carries on
    const bool retryable = !out.result.ok && out.result.error_class == "transient" &&
                           attempt < max_attempts;
    if (!retryable) {
      out.result.wall_seconds = clock.seconds();
      return out;
    }
    bool give_up = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      give_up = cancelled_;  // a cancelled batch stops burning retries
      if (!give_up) ++stats_.retries;
    }
    if (give_up) {
      out.result.wall_seconds = clock.seconds();
      return out;
    }
    OBS_INSTANT("sched.retry", attempt);
    // Checkpoint-aware recovery: resume the retry from the newest valid
    // snapshot this job has written (quarantining corrupt rotations) so it
    // repeats as few steps as possible; with no valid snapshot it starts
    // from scratch.  A parked in-RAM blob (preemption) stays authoritative.
    job.prior_snapshots = out.result.snapshots;
    if (!job.resume_blob && control.can_checkpoint) {
      std::vector<std::string> bad;
      job.resume_from = io::find_latest_valid_snapshot(job.checkpoint_path,
                                                       job.checkpoint_keep, &bad);
      quarantined += static_cast<int>(bad.size());
      if (!bad.empty()) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.quarantined += bad.size();
      }
    }
    // Exponential backoff with deterministic jitter, clamped to whatever
    // deadline budget remains (the next attempt's entry check then reports
    // "deadline" rather than sleeping past it).
    double delay = job.retry.backoff_seconds;
    for (int i = 1; i < attempt; ++i) delay *= job.retry.backoff_multiplier;
    delay = std::min(delay, job.retry.max_backoff_seconds);
    if (job.retry.jitter > 0.0) {
      delay *= 1.0 + job.retry.jitter * (2.0 * jitter_rng.uniform() - 1.0);
    }
    if (job.deadline_seconds > 0.0) {
      delay = std::min(delay, std::max(0.0, job.deadline_seconds - clock.seconds()));
    }
    if (delay > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

Scheduler::RunOutcome Scheduler::run_attempt(Job& job, std::size_t seq, int slot_id,
                                             RunControl& control,
                                             const util::Timer& clock) {
  RunOutcome out;
  JobResult& r = out.result;
  r.index = seq;
  r.name = job.name.empty() ? "job" + std::to_string(seq) : job.name;
  r.slot = slot_id;
  r.preemptions = job.prior_preemptions;
  r.snapshots = job.prior_snapshots;
  OBS_SPAN("sched.attempt", static_cast<std::int64_t>(seq));
  util::Timer timer;

  // Deadline: the budget covers the whole run_job call (all attempts).
  // Checked here at attempt entry and below at every safe step boundary, so
  // enforcement latency is bounded by preempt_check_every steps.
  auto check_deadline = [&] {
    if (job.deadline_seconds > 0.0 && clock.seconds() >= job.deadline_seconds) {
      throw DeadlineExceeded(r.name, job.deadline_seconds);
    }
  };

  EnginePool::EngineLease engine_lease;
  EnginePool::FieldsLease fields_lease;
  try {
    check_deadline();
    thiim::SimulationConfig cfg = job.config;
    if (cfg.threads <= 0) {
      cfg.threads = cfg_.threads_per_job > 0
                        ? cfg_.threads_per_job
                        : static_cast<int>(resources_.slot(slot_id).cpus.size());
    }
    r.threads = cfg.threads;

    // Resolve any `auto` once per (spec, shape, threads) via the PlanCache,
    // so the pool key below is concrete and later same-shape jobs skip the
    // tuner entirely.
    exec::EngineSpec spec = cfg.engine_spec.empty()
                                ? thiim::lower_engine_spec(cfg)
                                : exec::parse_engine_spec(cfg.engine_spec);
    exec::BuildContext ctx;
    ctx.grid = cfg.grid;
    ctx.threads = cfg.threads;
    if (cfg_.cache_plans) {
      spec = plan_cache_.resolve(spec, ctx, &r.plan_cache_hit);
    } else if (tune::spec_needs_tuning(spec)) {
      spec = tune::resolve_auto_spec(spec, ctx);
    }
    r.engine_spec = exec::to_string(spec);
    cfg.engine_spec = r.engine_spec;

    thiim::BorrowedState borrowed;
    fault::maybe_fail("sched.acquire");
    if (cfg_.pool_engines) {
      engine_lease = pool_.acquire_engine(spec, ctx);
      fields_lease = pool_.acquire_fields(cfg.grid);
      r.engine_reused = engine_lease.reused;
      borrowed.engine = engine_lease.engine.get();
      borrowed.fields = fields_lease.fields.get();
    }
    thiim::Simulation sim(cfg, borrowed);
    if (job.setup) {
      job.setup(sim, job);
    } else {
      sim.finalize();
    }

    // Resume: fields + step counter come from the snapshot; coefficients
    // and sources were just rebuilt by setup (which must therefore be
    // deterministic — same geometry and sources as the original attempt).
    if (job.resume_blob || !job.resume_from.empty()) {
      if (job.converge_tol > 0.0) {
        throw std::invalid_argument(
            "batch: resume_from requires a fixed-step job (converge_tol == 0)");
      }
      if (job.resume_blob) {
        std::istringstream is(*job.resume_blob, std::ios::binary);
        sim.restore_snapshot(is);
        r.resumed = true;
      } else {
        // Vet the rotation chain before restoring: corrupt files are
        // quarantined to *.bad and the next-older rotation wins; when
        // nothing valid is left the job starts from scratch rather than
        // failing on a checkpoint it merely used to have.
        std::vector<std::string> bad;
        const std::string valid = io::find_latest_valid_snapshot(
            job.resume_from, job.checkpoint_keep, &bad);
        r.quarantined += static_cast<int>(bad.size());
        if (!bad.empty()) {
          std::lock_guard<std::mutex> lock(mu_);
          stats_.quarantined += bad.size();
        }
        if (!valid.empty()) {
          sim.restore_snapshot_file(valid);
          r.resumed = true;
        }
      }
    }

    // Periodic checkpointing + preemption polling at safe step boundaries.
    const bool want_ckpt = control.can_checkpoint;
    std::unique_ptr<io::SnapshotWriter> writer;
    int local_snapshots = 0;
    bool preempt_hit = false;
    int hook_every = 0;
    if (want_ckpt) hook_every = job.checkpoint_every;
    if (control.preemptible) {
      const int poll = cfg_.preempt_check_every > 0 ? cfg_.preempt_check_every : 16;
      hook_every = hook_every > 0 ? std::min(hook_every, poll) : poll;
    }
    const bool want_deadline = job.deadline_seconds > 0.0;
    if (want_deadline) {
      const int poll = cfg_.preempt_check_every > 0 ? cfg_.preempt_check_every : 16;
      hook_every = hook_every > 0 ? std::min(hook_every, poll) : poll;
    }
    if (hook_every > 0 && job.converge_tol == 0.0) {
      if (want_ckpt) writer = std::make_unique<io::SnapshotWriter>(sim.fields().layout());
      int next_ckpt = want_ckpt ? ((sim.steps_done() / job.checkpoint_every) + 1) *
                                      job.checkpoint_every
                                : 0;
      sim.set_step_hook(hook_every, [&](int steps_done) {
        check_deadline();
        bool snap = false;
        if (want_ckpt) {
          if (steps_done >= next_ckpt) {
            snap = true;
            next_ckpt = ((steps_done / job.checkpoint_every) + 1) * job.checkpoint_every;
          }
          if (control.checkpoint.exchange(false, std::memory_order_relaxed)) snap = true;
        }
        if (snap) {
          writer->capture(sim.fields(), sim.snapshot_info(), job.checkpoint_path,
                          job.checkpoint_keep);
          ++local_snapshots;
        }
        if (control.preempt.load(std::memory_order_relaxed)) {
          preempt_hit = true;
          return false;
        }
        return true;
      });
    } else if (hook_every > 0 && want_deadline) {
      // Convergence jobs never checkpoint or preempt, but a deadline still
      // applies — poll it at the same boundary cadence.
      sim.set_step_hook(hook_every, [&](int) {
        check_deadline();
        return true;
      });
    }

    if (job.converge_tol > 0.0) {
      r.converged_change = sim.run_until_converged(
          job.converge_tol, job.max_steps > 0 ? job.max_steps : job.steps,
          job.check_every);
    } else {
      const int remaining = std::max(0, job.steps - sim.steps_done());
      sim.run(remaining);
    }
    sim.set_step_hook(0, nullptr);
    r.snapshots += local_snapshots;
    if (writer) {
      // Settle the async writes so the reported stats are final and any
      // write error fails the job here, not silently.
      writer->wait_idle();
      const io::SnapshotWriter::Stats ws = writer->stats();
      out.snapshots_written += ws.written;
      out.snapshot_bytes += ws.bytes_written;
    }

    if (preempt_hit) {
      OBS_INSTANT("sched.preempt", static_cast<std::int64_t>(seq));
      // Park the state in RAM and hand back a continuation.  Serializing
      // happens at a step boundary (the engine is between runs), so the
      // leases can be returned to the pool for the preemptor to reuse.
      out.continuation = Job();
      Job& cont = *out.continuation;
      cont = std::move(job);
      cont.config.engine_spec = r.engine_spec;  // pin: skip re-tuning on resume
      cont.resume_blob = std::make_shared<const std::string>(
          io::snapshot_to_string(sim.fields(), sim.snapshot_info()));
      cont.resume_from.clear();  // the blob supersedes any file
      cont.prior_preemptions = r.preemptions + 1;
      cont.prior_snapshots = r.snapshots;
      pool_.release_engine(std::move(engine_lease));
      pool_.release_fields(std::move(fields_lease));
      r.wall_seconds = timer.seconds();
      return out;
    }

    r.steps_done = sim.steps_done();
    r.total_energy = sim.total_energy();
    r.electric_energy = sim.electric_energy();
    r.absorption = sim.absorption_by_material();
    r.stats = sim.last_stats();
    r.engine_name = sim.engine().name();
    r.ok = true;
    pool_.release_engine(std::move(engine_lease));
    pool_.release_fields(std::move(fields_lease));
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
    r.error_class = classify_error(e);
    // The engine's internal state is unspecified after a throw: drop the
    // lease (destroying the engine) instead of recycling it.  The FieldSet
    // is safe to recycle — borrows always clear_all() first.
    pool_.release_fields(std::move(fields_lease));
  }
  r.wall_seconds = timer.seconds();
  return out;
}

void Scheduler::finish_result(JobResult&& result,
                              const std::function<void(const JobResult&)>& sink) {
  // The snapshot deep-copies the result (absorption vector, strings); skip
  // it on the common no-observer path so the mutex-held section stays at a
  // move plus counter updates.
  const bool observed =
      static_cast<bool>(sink) || has_progress_.load(std::memory_order_relaxed);
  std::size_t done = 0;
  std::size_t total = 0;
  JobResult snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.cancelled) {
      ++stats_.cancelled;  // drained, never claimed: running_ untouched
    } else {
      --running_;  // every non-cancelled result came through an executor claim
      if (result.ok) {
        ++stats_.completed;
        stats_.engine.merge(result.stats);
      } else {
        ++stats_.failed;
      }
    }
    if (observed) snapshot = result;
    results_[result.index] = std::move(result);
    done = ++done_;
    total = stats_.submitted;
  }
  cv_done_.notify_all();
  if (!observed) return;
  if (sink) {
    try {
      sink(snapshot);
    } catch (...) {
      // Sinks are observability hooks; a throwing sink must not take the
      // batch down or wedge the executor.
    }
  }
  std::lock_guard<std::recursive_mutex> lock(progress_mu_);
  if (progress_) {
    try {
      progress_(snapshot, done, total);
    } catch (...) {
    }
  }
}

}  // namespace emwd::batch
