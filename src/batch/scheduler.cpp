#include "batch/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exec/engine_spec.hpp"
#include "tune/autotuner.hpp"
#include "util/affinity.hpp"
#include "util/timer.hpp"

namespace emwd::batch {

/// Max-heap order for std::push_heap/pop_heap: higher priority first, ties
/// in submission order (larger seq compares "smaller").
struct SchedulerEntryLess {
  bool operator()(const auto& a, const auto& b) const {
    return a.priority < b.priority || (a.priority == b.priority && a.seq > b.seq);
  }
};

Scheduler::Scheduler(SchedulerConfig cfg)
    : cfg_(std::move(cfg)),
      // Default slot count: one per requested executor (so side-by-side
      // jobs get private cpu subsets even within one NUMA node), or one per
      // NUMA domain when concurrency is defaulted too.  ResourceManager
      // clamps to the cpu count.
      resources_(cfg_.host ? *cfg_.host : util::detect_host(),
                 cfg_.slots > 0 ? cfg_.slots
                                : (cfg_.concurrency > 0 ? cfg_.concurrency : 0)) {
  const int executors =
      cfg_.concurrency > 0 ? cfg_.concurrency : resources_.num_slots();
  stats_.slots = resources_.num_slots();
  stats_.executors = executors;
  pool_.set_max_idle(cfg_.max_idle_engines, cfg_.max_idle_fields);
  executors_.reserve(static_cast<std::size_t>(executors));
  for (int i = 0; i < executors; ++i) {
    executors_.emplace_back([this, i] { executor_loop(i); });
  }
}

Scheduler::~Scheduler() {
  if (!joined_) {
    cancel();
    {
      std::lock_guard<std::mutex> lock(mu_);
      closing_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : executors_) {
      if (t.joinable()) t.join();
    }
    joined_ = true;
  }
}

std::size_t Scheduler::submit(Job job) {
  std::size_t seq = 0;
  bool drop = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_) throw std::logic_error("batch::Scheduler: submit after wait_all");
    seq = results_.size();
    results_.emplace_back();
    ++stats_.submitted;
    if (cancelled_) {
      drop = true;  // record outside the lock, consistent with cancel()
    } else {
      queue_.push_back(Entry{job.priority, seq, std::move(job)});
      std::push_heap(queue_.begin(), queue_.end(), SchedulerEntryLess{});
    }
  }
  if (drop) {
    JobResult r;
    r.index = seq;
    r.name = job.name.empty() ? "job" + std::to_string(seq) : job.name;
    r.cancelled = true;
    r.error = "cancelled";
    finish_result(std::move(r), job.sink);
  } else {
    cv_work_.notify_one();
  }
  return seq;
}

void Scheduler::set_progress(ProgressFn fn) {
  std::lock_guard<std::recursive_mutex> lock(progress_mu_);
  progress_ = std::move(fn);
  has_progress_.store(static_cast<bool>(progress_), std::memory_order_relaxed);
}

void Scheduler::cancel() {
  std::vector<Entry> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    drained = std::move(queue_);
    queue_.clear();
  }
  // From here no executor can claim work (claiming pops under the same
  // mutex, and the queue is now empty); jobs claimed earlier — running, or
  // popped an instant before this drain — complete normally.
  cv_work_.notify_all();
  for (Entry& e : drained) {
    JobResult r;
    r.index = e.seq;
    r.name = e.job.name.empty() ? "job" + std::to_string(e.seq) : e.job.name;
    r.cancelled = true;
    r.error = "cancelled";
    finish_result(std::move(r), e.job.sink);
  }
}

std::vector<JobResult> Scheduler::wait_all() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (joined_) throw std::logic_error("batch::Scheduler: wait_all called twice");
    closing_ = true;
    cv_work_.notify_all();
    cv_done_.wait(lock, [&] { return done_ == stats_.submitted; });
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(results_);
}

BatchStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BatchStats out = stats_;
  // Occupancy is read under the same mutex that claims and finishes jobs,
  // so the identity queued + running + done == submitted holds exactly in
  // every snapshot (the serve daemon's Status endpoint relies on it).
  out.queued = queue_.size();
  out.running = running_;
  for (const Entry& e : queue_) ++out.queue_depth[e.priority];
  out.pool = pool_.stats();
  out.plans = plan_cache_.stats();
  return out;
}

void Scheduler::executor_loop(int executor_id) {
  const int slot_id = resources_.slot_for_executor(executor_id);
  if (cfg_.pin_slots) {
    // Best effort; engine worker threads inherit the mask.
    util::pin_current_thread(resources_.slot(slot_id).cpus);
  }
  for (;;) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return closing_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (closing_) return;
        continue;
      }
      std::pop_heap(queue_.begin(), queue_.end(), SchedulerEntryLess{});
      entry = std::move(queue_.back());
      queue_.pop_back();
      ++running_;  // claimed under the same lock; finish_result undoes it
    }
    auto sink = entry.job.sink;
    JobResult r;
    {
      // A job may repin this executor (sharded NUMA binding, user setup
      // code); restore the slot mask after every job — throwing included —
      // so one job's cpuset never leaks into the next job on this thread.
      util::ScopedAffinity affinity_guard;
      r = run_job(std::move(entry.job), entry.seq, slot_id);
    }
    finish_result(std::move(r), sink);
  }
}

JobResult Scheduler::run_job(Job&& job, std::size_t seq, int slot_id) {
  JobResult r;
  r.index = seq;
  r.name = job.name.empty() ? "job" + std::to_string(seq) : job.name;
  r.slot = slot_id;
  util::Timer timer;

  EnginePool::EngineLease engine_lease;
  EnginePool::FieldsLease fields_lease;
  try {
    thiim::SimulationConfig cfg = job.config;
    if (cfg.threads <= 0) {
      cfg.threads = cfg_.threads_per_job > 0
                        ? cfg_.threads_per_job
                        : static_cast<int>(resources_.slot(slot_id).cpus.size());
    }
    r.threads = cfg.threads;

    // Resolve any `auto` once per (spec, shape, threads) via the PlanCache,
    // so the pool key below is concrete and later same-shape jobs skip the
    // tuner entirely.
    exec::EngineSpec spec = cfg.engine_spec.empty()
                                ? thiim::lower_engine_spec(cfg)
                                : exec::parse_engine_spec(cfg.engine_spec);
    exec::BuildContext ctx;
    ctx.grid = cfg.grid;
    ctx.threads = cfg.threads;
    if (cfg_.cache_plans) {
      spec = plan_cache_.resolve(spec, ctx, &r.plan_cache_hit);
    } else if (tune::spec_needs_tuning(spec)) {
      spec = tune::resolve_auto_spec(spec, ctx);
    }
    r.engine_spec = exec::to_string(spec);
    cfg.engine_spec = r.engine_spec;

    thiim::BorrowedState borrowed;
    if (cfg_.pool_engines) {
      engine_lease = pool_.acquire_engine(spec, ctx);
      fields_lease = pool_.acquire_fields(cfg.grid);
      r.engine_reused = engine_lease.reused;
      borrowed.engine = engine_lease.engine.get();
      borrowed.fields = fields_lease.fields.get();
    }
    thiim::Simulation sim(cfg, borrowed);
    if (job.setup) {
      job.setup(sim, job);
    } else {
      sim.finalize();
    }
    if (job.converge_tol > 0.0) {
      r.converged_change = sim.run_until_converged(
          job.converge_tol, job.max_steps > 0 ? job.max_steps : job.steps,
          job.check_every);
    } else {
      sim.run(job.steps);
    }
    r.steps_done = sim.steps_done();
    r.total_energy = sim.total_energy();
    r.electric_energy = sim.electric_energy();
    r.absorption = sim.absorption_by_material();
    r.stats = sim.last_stats();
    r.engine_name = sim.engine().name();
    r.ok = true;
    pool_.release_engine(std::move(engine_lease));
    pool_.release_fields(std::move(fields_lease));
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
    // The engine's internal state is unspecified after a throw: drop the
    // lease (destroying the engine) instead of recycling it.  The FieldSet
    // is safe to recycle — borrows always clear_all() first.
    pool_.release_fields(std::move(fields_lease));
  }
  r.wall_seconds = timer.seconds();
  return r;
}

void Scheduler::finish_result(JobResult&& result,
                              const std::function<void(const JobResult&)>& sink) {
  // The snapshot deep-copies the result (absorption vector, strings); skip
  // it on the common no-observer path so the mutex-held section stays at a
  // move plus counter updates.
  const bool observed =
      static_cast<bool>(sink) || has_progress_.load(std::memory_order_relaxed);
  std::size_t done = 0;
  std::size_t total = 0;
  JobResult snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.cancelled) {
      ++stats_.cancelled;  // drained, never claimed: running_ untouched
    } else {
      --running_;  // every non-cancelled result came through an executor claim
      if (result.ok) {
        ++stats_.completed;
        stats_.engine.merge(result.stats);
      } else {
        ++stats_.failed;
      }
    }
    if (observed) snapshot = result;
    results_[result.index] = std::move(result);
    done = ++done_;
    total = stats_.submitted;
  }
  cv_done_.notify_all();
  if (!observed) return;
  if (sink) {
    try {
      sink(snapshot);
    } catch (...) {
      // Sinks are observability hooks; a throwing sink must not take the
      // batch down or wedge the executor.
    }
  }
  std::lock_guard<std::recursive_mutex> lock(progress_mu_);
  if (progress_) {
    try {
      progress_(snapshot, done, total);
    } catch (...) {
    }
  }
}

}  // namespace emwd::batch
