#include "batch/resource.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace emwd::batch {

namespace {

/// The host's per-node cpu lists with every fallback applied: at least one
/// node, no empty nodes, at least one cpu total.
std::vector<std::vector<int>> sane_nodes(const util::HostInfo& host) {
  std::vector<std::vector<int>> nodes;
  for (const std::vector<int>& n : host.numa_node_cpus) {
    if (!n.empty()) nodes.push_back(n);
  }
  if (nodes.empty()) {
    nodes.emplace_back();
    for (int c = 0; c < std::max(1, host.logical_cpus); ++c) nodes[0].push_back(c);
  }
  return nodes;
}

}  // namespace

ResourceManager::ResourceManager(const util::HostInfo& host, int want_slots) {
  const std::vector<std::vector<int>> nodes = sane_nodes(host);
  const int num_nodes = static_cast<int>(nodes.size());
  int total_cpus = 0;
  for (const auto& n : nodes) total_cpus += static_cast<int>(n.size());

  int want = want_slots <= 0 ? num_nodes : want_slots;
  want = std::clamp(want, 1, total_cpus);

  if (want <= num_nodes) {
    // Merge contiguous node groups: slot s covers nodes [s*N/S, (s+1)*N/S).
    for (int s = 0; s < want; ++s) {
      const int lo = s * num_nodes / want;
      const int hi = (s + 1) * num_nodes / want;
      Slot slot;
      slot.id = s;
      slot.numa_node = lo;
      for (int n = lo; n < hi; ++n) {
        slot.cpus.insert(slot.cpus.end(), nodes[n].begin(), nodes[n].end());
      }
      slots_.push_back(std::move(slot));
    }
    return;
  }

  // Split nodes: every node gets at least one slot, then the node with the
  // most cpus per slot gains the next one until `want` slots exist.  A node
  // never holds more slots than cpus, so no slot ends up empty.
  std::vector<int> per_node(nodes.size(), 1);
  int assigned = num_nodes;
  while (assigned < want) {
    int best = -1;
    double best_load = 0.0;
    for (int n = 0; n < num_nodes; ++n) {
      const int cpus = static_cast<int>(nodes[n].size());
      if (per_node[n] >= cpus) continue;  // full: one cpu per slot already
      const double load = static_cast<double>(cpus) / (per_node[n] + 1);
      if (best < 0 || load > best_load) {
        best = n;
        best_load = load;
      }
    }
    // want <= total_cpus guarantees spare capacity somewhere.
    per_node[static_cast<std::size_t>(best)]++;
    ++assigned;
  }

  int id = 0;
  for (int n = 0; n < num_nodes; ++n) {
    const int k = per_node[static_cast<std::size_t>(n)];
    const int sz = static_cast<int>(nodes[n].size());
    for (int j = 0; j < k; ++j) {
      Slot slot;
      slot.id = id++;
      slot.numa_node = n;
      const int lo = j * sz / k;
      const int hi = (j + 1) * sz / k;
      slot.cpus.assign(nodes[n].begin() + lo, nodes[n].begin() + hi);
      slots_.push_back(std::move(slot));
    }
  }
}

ResourceManager ResourceManager::detect(int want_slots) {
  return ResourceManager(util::detect_host(), want_slots);
}

std::string ResourceManager::describe() const {
  std::ostringstream os;
  os << slots_.size() << " slot" << (slots_.size() == 1 ? "" : "s") << ":";
  for (const Slot& s : slots_) {
    os << " #" << s.id << " node" << s.numa_node << " cpus";
    // Render runs compactly: 0-3,8.
    for (std::size_t i = 0; i < s.cpus.size();) {
      std::size_t j = i;
      while (j + 1 < s.cpus.size() && s.cpus[j + 1] == s.cpus[j] + 1) ++j;
      os << (i == 0 ? " " : ",") << s.cpus[i];
      if (j > i) os << '-' << s.cpus[j];
      i = j + 1;
    }
  }
  return os.str();
}

}  // namespace emwd::batch
