// batch::run_sweep — expand parameter axes into Jobs, run them through the
// Scheduler, gather an ordered result table.
//
// This is the high-level API behind examples/spectrum_sweep: the paper's
// production workload sweeps 80-160 wavelengths over one geometry (Sec.
// VI); run_sweep turns (wavelengths x grids x engine specs) into a job
// fleet, co-schedules it across the machine's NUMA slots and returns
// results in axis order regardless of completion order.  Supports
// cancellation through the progress callback.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "batch/job.hpp"
#include "batch/scheduler.hpp"

namespace emwd::batch {

struct SweepConfig {
  /// Template configuration every job starts from.  A job's axes override
  /// wavelength_cells / grid / engine_spec; everything else is shared.
  thiim::SimulationConfig base;

  /// Sweep axes; an empty axis keeps the base value as its single point.
  /// Jobs are the cartesian product in (wavelength, grid, engine) order —
  /// the result vector preserves exactly this order.
  std::vector<double> wavelengths;
  std::vector<grid::Extents> grids;
  std::vector<std::string> engine_specs;

  /// Per-job run budget, as in Job.
  int steps = 100;
  double converge_tol = 0.0;
  int max_steps = 0;
  int check_every = 10;

  /// Geometry/sources per job (see Job::setup); unset = finalize() only.
  std::function<void(thiim::Simulation&, const Job&)> setup;

  // ------------------------------------------- checkpoint / preemption
  /// With checkpoint_every > 0 and a non-empty checkpoint_dir, every job
  /// checkpoints to `<checkpoint_dir>/job<index>.ckpt` (index = expansion
  /// order, so the mapping is stable across runs) every checkpoint_every
  /// steps through the scheduler's async snapshot writer.
  int checkpoint_every = 0;
  std::string checkpoint_dir;
  /// Rotation depth per checkpoint path (Job::checkpoint_keep): keep the
  /// last `checkpoint_keep` snapshots of every job as path, path.1, ...
  int checkpoint_keep = 1;
  /// Resume jobs whose checkpoint file already exists (fixed-step sweeps
  /// only): each such job restores the newest valid snapshot of its chain
  /// (corrupt rotations are quarantined to *.bad) and runs only the
  /// remaining steps — the completed sweep is bit-exact with an
  /// uninterrupted one.
  bool resume = false;
  /// Mark every job preemptible (see Job::preemptible).
  bool preemptible = false;

  // --------------------------------------------------- failure policies
  /// Retry policy applied to every job (Job::retry); the default single
  /// attempt keeps failures loud.
  RetryPolicy retry;
  /// Per-job wall-clock budget in seconds (Job::deadline_seconds); 0 = none.
  double deadline_seconds = 0.0;

  /// Scheduler knobs (concurrency, slots, pooling, pinning).
  SchedulerConfig scheduler;

  /// Called after each job finishes (serialized).  Return false to cancel
  /// the remainder of the sweep — already-running jobs complete, queued
  /// ones are drained into cancelled results.
  std::function<bool(const JobResult&, std::size_t done, std::size_t total)> progress;
};

struct SweepResult {
  std::vector<JobResult> results;  // axis-expansion order
  BatchStats stats;
  double wall_seconds = 0.0;

  /// JobResult::table over the results.
  util::Table to_table() const { return JobResult::table(results); }
};

/// The job fleet run_sweep would schedule, in axis-expansion order
/// (wavelength x grid x engine) with run_sweep's naming, without running
/// anything.  The serve daemon admits exactly this fleet for a remote
/// sweep, which is what makes client-submitted results bit-exact with an
/// in-process run_sweep of the same spec (CI gates on it).
std::vector<Job> expand_sweep_jobs(const SweepConfig& cfg);

/// Expand, schedule, wait.  The per-job results are bit-exact with running
/// each configuration standalone, at any scheduler concurrency.
SweepResult run_sweep(const SweepConfig& cfg);

}  // namespace emwd::batch
