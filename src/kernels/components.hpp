// The THIIM stencil's 12 split-field components and their dependency table.
//
// Naming follows the paper's Fig. 3: the first subscript is the parent field
// component, the second names the partner component whose two split parts are
// read (e.g. Hyx is the part of Hy fed by the z-derivative of Ex = Exy+Exz).
// Each Ĥ component reads its partner Ê parts at a unit *negative* offset and
// each Ê component reads partner Ĥ parts at a unit *positive* offset along
// exactly one axis.  Four components (the z-shift ones) additionally read a
// source array; those are the updates shown in the paper's Listing 1 (22
// flops); the other eight follow Listing 2 (20 flops).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace emwd::kernels {

enum class Comp : std::uint8_t {
  Exy = 0,
  Exz,
  Eyx,
  Eyz,
  Ezx,
  Ezy,
  Hxy,
  Hxz,
  Hyx,
  Hyz,
  Hzx,
  Hzy,
};

inline constexpr int kNumComps = 12;
inline constexpr int kNumSources = 4;  // SrcEx, SrcEy, SrcHx, SrcHy

enum class Axis : std::uint8_t { X = 0, Y = 1, Z = 2 };

/// Static description of one component update.
struct CompInfo {
  Comp self;
  std::string_view name;
  bool is_h;           // Ĥ components update in the first half-step
  Comp partner_a;      // first split part read (e.g. Exy)
  Comp partner_b;      // second split part read (e.g. Exz)
  Axis axis;           // shift axis == derivative axis == PML damping axis
  int shift;           // -1 for Ĥ, +1 for Ê (unit offset along `axis`)
  int diff_sign;       // +1: (current - shifted); -1: (shifted - current)
  int src_index;       // 0..3 into the source array set, or -1
  int flops;           // per lattice site, matches the paper's counts
};

/// Index into the 12-entry tables.
constexpr int idx(Comp c) { return static_cast<int>(c); }

/// The canonical table (order matches the Comp enum).  Derivation of the
/// diff_sign column: the discrete curl signs of the Yee/Berenger splitting;
/// the two paper listings pin down two rows (Hyx: +1, Hzx: -1) and the rest
/// follow from the curl structure (see DESIGN.md Sec. 2).
constexpr std::array<CompInfo, kNumComps> kComps{{
    // self   name    is_h  partner_a  partner_b  axis     shift ds  src flops
    {Comp::Exy, "Exy", false, Comp::Hyx, Comp::Hyz, Axis::Z, +1, -1, 0, 22},
    {Comp::Exz, "Exz", false, Comp::Hzx, Comp::Hzy, Axis::Y, +1, +1, -1, 20},
    {Comp::Eyx, "Eyx", false, Comp::Hxy, Comp::Hxz, Axis::Z, +1, +1, 1, 22},
    {Comp::Eyz, "Eyz", false, Comp::Hzx, Comp::Hzy, Axis::X, +1, -1, -1, 20},
    {Comp::Ezx, "Ezx", false, Comp::Hxy, Comp::Hxz, Axis::Y, +1, -1, -1, 20},
    {Comp::Ezy, "Ezy", false, Comp::Hyx, Comp::Hyz, Axis::X, +1, +1, -1, 20},
    {Comp::Hxy, "Hxy", true, Comp::Eyx, Comp::Eyz, Axis::Z, -1, -1, 2, 22},
    {Comp::Hxz, "Hxz", true, Comp::Ezx, Comp::Ezy, Axis::Y, -1, +1, -1, 20},
    {Comp::Hyx, "Hyx", true, Comp::Exy, Comp::Exz, Axis::Z, -1, +1, 3, 22},
    {Comp::Hyz, "Hyz", true, Comp::Ezx, Comp::Ezy, Axis::X, -1, -1, -1, 20},
    {Comp::Hzx, "Hzx", true, Comp::Exy, Comp::Exz, Axis::Y, -1, -1, -1, 20},
    {Comp::Hzy, "Hzy", true, Comp::Eyx, Comp::Eyz, Axis::X, -1, +1, -1, 20},
}};

constexpr const CompInfo& info(Comp c) { return kComps[idx(c)]; }

/// The six Ê / six Ĥ components, in update order.
constexpr std::array<Comp, 6> kEComps{Comp::Exy, Comp::Exz, Comp::Eyx,
                                      Comp::Eyz, Comp::Ezx, Comp::Ezy};
constexpr std::array<Comp, 6> kHComps{Comp::Hxy, Comp::Hxz, Comp::Hyx,
                                      Comp::Hyz, Comp::Hzx, Comp::Hzy};

/// Source array names by src_index.
constexpr std::array<std::string_view, kNumSources> kSourceNames{"SrcEx", "SrcEy",
                                                                 "SrcHx", "SrcHy"};

/// Total floating-point operations per full lattice-site update (all 12
/// component updates): the paper counts 4*22 + 8*20 = 248 DP flops/LUP.
constexpr int total_flops_per_lup() {
  int sum = 0;
  for (const auto& c : kComps) sum += c.flops;
  return sum;
}
static_assert(total_flops_per_lup() == 248, "must match the paper's Sec. III-A count");

/// Compile-time sanity checks on the table (mirrored by runtime tests).
constexpr bool table_is_consistent() {
  for (int i = 0; i < kNumComps; ++i) {
    const CompInfo& c = kComps[i];
    if (idx(c.self) != i) return false;
    if (c.is_h != (i >= 6)) return false;
    // Ĥ reads Ê parts and vice versa.
    if (info(c.partner_a).is_h == c.is_h) return false;
    if (info(c.partner_b).is_h == c.is_h) return false;
    if (c.shift != (c.is_h ? -1 : +1)) return false;
    if (c.flops != ((c.src_index >= 0) ? 22 : 20)) return false;
    // Sources only on z-shift components.
    if ((c.src_index >= 0) != (c.axis == Axis::Z)) return false;
  }
  return true;
}
static_assert(table_is_consistent());

}  // namespace emwd::kernels
