#include "kernels/update.hpp"

namespace emwd::kernels {
namespace {

/// Core loop shared by the src / no-src variants.  `HasSrc` is a compile-time
/// switch so the no-source kernel carries no dead loads (paper Listing 2).
template <bool HasSrc>
inline void update_row_impl(const RowArgs& g) noexcept {
  double* __restrict x = g.x;
  const double* __restrict t = g.t;
  const double* __restrict c = g.c;
  const double* __restrict src = g.src;
  const double* __restrict a = g.a;
  const double* __restrict b = g.b;
  const double* __restrict as = g.a + 2 * g.shift;
  const double* __restrict bs = g.b + 2 * g.shift;
  const double ds = g.ds;
  const int n2 = 2 * g.n;

  for (int i = 0; i < n2; i += 2) {
    // Difference of the two partner split parts, base minus shifted (signed).
    const double re = ds * (a[i] - as[i] + b[i] - bs[i]);
    const double im = ds * (a[i + 1] - as[i + 1] + b[i + 1] - bs[i + 1]);
    // Complex X*t - c*(re + i*im) (+ Src), exactly as the paper's listings.
    double xr = x[i] * t[i] - x[i + 1] * t[i + 1] - c[i] * re + c[i + 1] * im;
    double xi = x[i] * t[i + 1] + x[i + 1] * t[i] - c[i] * im - c[i + 1] * re;
    if constexpr (HasSrc) {
      xr += src[i];
      xi += src[i + 1];
    }
    x[i] = xr;
    x[i + 1] = xi;
  }
}

}  // namespace

void update_row(const RowArgs& args) noexcept {
  if (args.src != nullptr) {
    update_row_impl<true>(args);
  } else {
    update_row_impl<false>(args);
  }
}

std::ptrdiff_t shift_offset(const grid::Layout& layout, Comp comp) {
  const CompInfo& ci = info(comp);
  switch (ci.axis) {
    case Axis::X:
      return ci.shift * layout.stride_x();
    case Axis::Y:
      return ci.shift * layout.stride_y();
    case Axis::Z:
    default:
      return ci.shift * layout.stride_z();
  }
}

void update_cell_wrapped(grid::FieldSet& fs, Comp comp, int i, int i_partner, int j,
                         int k) {
  const CompInfo& ci = info(comp);
  const grid::Layout& layout = fs.layout();
  const std::size_t p = 2 * layout.at(i, j, k);
  const std::size_t q = 2 * layout.at(i_partner, j, k);

  double* x = fs.field(comp).data();
  const double* t = fs.coeff_t(comp).data();
  const double* c = fs.coeff_c(comp).data();
  const grid::Field* srcf = fs.source_for(comp);
  const double* a = fs.field(ci.partner_a).data();
  const double* b = fs.field(ci.partner_b).data();
  const double ds = static_cast<double>(ci.diff_sign);

  const double re = ds * (a[p] - a[q] + b[p] - b[q]);
  const double im = ds * (a[p + 1] - a[q + 1] + b[p + 1] - b[q + 1]);
  double xr = x[p] * t[p] - x[p + 1] * t[p + 1] - c[p] * re + c[p + 1] * im;
  double xi = x[p] * t[p + 1] + x[p + 1] * t[p] - c[p] * im - c[p + 1] * re;
  if (srcf != nullptr) {
    xr += srcf->data()[p];
    xi += srcf->data()[p + 1];
  }
  x[p] = xr;
  x[p + 1] = xi;
}

void update_comp_row(grid::FieldSet& fs, Comp comp, int x0, int x1, int j, int k) {
  if (x1 <= x0) return;
  const CompInfo& ci = info(comp);
  const grid::Layout& layout = fs.layout();
  const int nx = layout.nx();

  // Periodic x: peel the wrap-around cell of the x-shift components.  The
  // Ĥ components read x-1 (wraps at x = 0 to nx-1); the Ê components read
  // x+1 (wraps at x = nx-1 to 0).
  if (fs.x_boundary() == grid::XBoundary::Periodic && ci.axis == Axis::X) {
    if (ci.shift < 0 && x0 == 0) {
      update_cell_wrapped(fs, comp, 0, nx - 1, j, k);
      ++x0;
    } else if (ci.shift > 0 && x1 == nx) {
      update_cell_wrapped(fs, comp, nx - 1, 0, j, k);
      --x1;
    }
    if (x1 <= x0) return;
  }

  const std::size_t base = layout.at(x0, j, k);

  RowArgs args;
  args.x = fs.field(comp).data() + 2 * base;
  args.t = fs.coeff_t(comp).data() + 2 * base;
  args.c = fs.coeff_c(comp).data() + 2 * base;
  const grid::Field* src = fs.source_for(comp);
  args.src = src ? src->data() + 2 * base : nullptr;
  args.a = fs.field(ci.partner_a).data() + 2 * base;
  args.b = fs.field(ci.partner_b).data() + 2 * base;
  args.shift = shift_offset(layout, comp);
  args.ds = static_cast<double>(ci.diff_sign);
  args.n = x1 - x0;
  update_row(args);
}

}  // namespace emwd::kernels
