// SIMD variants of the row kernel — the paper's Sec. VI future-work item
// ("we plan to investigate ... in particular the SIMD vectorization", the
// code running at ~5 % of peak despite being cache-bound).
//
// The AVX2 path processes two interleaved double-complex cells per 256-bit
// vector using the classic movedup/permute/addsub complex-multiply pattern.
// Results can differ from the scalar kernel in the last ulp (different
// summation order), so the engines keep the scalar kernel as the bitwise
// reference; the SIMD kernel is exercised by its own equivalence tests and
// micro-benchmarks (bench_micro reports the speedup).
#pragma once

#include "kernels/update.hpp"

namespace emwd::kernels {

enum class KernelIsa { Scalar, Avx2 };

/// Static name of an ISA ("scalar" / "avx2"); never dangles.
const char* to_string(KernelIsa isa) noexcept;

/// True when this binary AND this CPU can run the AVX2 kernel.
bool avx2_supported();

/// The ISA a request actually resolves to: Avx2 degrades to Scalar when the
/// binary or the CPU lacks it.  update_row_isa() dispatches through this,
/// and callers (engines, benches) record the result in EngineStats /
/// bench CSVs so a silent dispatch miss is diagnosable instead of showing
/// up only as a performance regression.
KernelIsa resolve_isa(KernelIsa requested) noexcept;

/// AVX2 implementation of update_row(); requires avx2_supported().
void update_row_avx2(const RowArgs& args) noexcept;

/// Dispatch by ISA (Scalar falls through to update_row()).
void update_row_isa(const RowArgs& args, KernelIsa isa) noexcept;

}  // namespace emwd::kernels
