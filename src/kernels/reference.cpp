#include "kernels/reference.hpp"

#include "kernels/update.hpp"

namespace emwd::kernels {

void reference_component_sweep(grid::FieldSet& fs, Comp comp) {
  const grid::Layout& layout = fs.layout();
  const int nx = layout.nx(), ny = layout.ny(), nz = layout.nz();
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      update_comp_row(fs, comp, 0, nx, j, k);
    }
  }
}

void reference_half_step(grid::FieldSet& fs, bool h_phase) {
  const auto& comps = h_phase ? kHComps : kEComps;
  for (Comp c : comps) reference_component_sweep(fs, c);
}

void reference_step(grid::FieldSet& fs, int steps) {
  for (int s = 0; s < steps; ++s) {
    reference_half_step(fs, /*h_phase=*/true);
    reference_half_step(fs, /*h_phase=*/false);
  }
}

}  // namespace emwd::kernels
