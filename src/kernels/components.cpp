#include "kernels/components.hpp"

// The component table is constexpr in the header; this file anchors the
// translation unit and provides the out-of-line ODR home for kComps uses.

namespace emwd::kernels {

static_assert(kComps.size() == kNumComps);

}  // namespace emwd::kernels
