#include "kernels/update_simd.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace emwd::kernels {

bool avx2_supported() {
#if defined(__AVX2__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

#if defined(__AVX2__)
namespace {

/// Complex multiply of interleaved pairs: [r0 i0 r1 i1] x [s0 j0 s1 j1].
inline __m256d cmul(__m256d a, __m256d b) {
  const __m256d a_re = _mm256_movedup_pd(a);        // [r0 r0 r1 r1]
  const __m256d a_im = _mm256_permute_pd(a, 0xF);   // [i0 i0 i1 i1]
  const __m256d b_sw = _mm256_permute_pd(b, 0x5);   // [j0 s0 j1 s1]
  return _mm256_addsub_pd(_mm256_mul_pd(a_re, b),
                          _mm256_mul_pd(a_im, b_sw));
}

}  // namespace

void update_row_avx2(const RowArgs& g) noexcept {
  double* __restrict x = g.x;
  const double* __restrict t = g.t;
  const double* __restrict c = g.c;
  const double* __restrict src = g.src;
  const double* __restrict a = g.a;
  const double* __restrict b = g.b;
  const double* __restrict as = g.a + 2 * g.shift;
  const double* __restrict bs = g.b + 2 * g.shift;
  const __m256d ds = _mm256_set1_pd(g.ds);
  const int n2 = 2 * g.n;
  const int vec_end = n2 - (n2 % 4);

  for (int i = 0; i < vec_end; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vas = _mm256_loadu_pd(as + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    const __m256d vbs = _mm256_loadu_pd(bs + i);
    // d = ds * ((A - Ash) + (B - Bsh)), elementwise on re/im lanes.
    const __m256d d = _mm256_mul_pd(
        ds, _mm256_add_pd(_mm256_sub_pd(va, vas), _mm256_sub_pd(vb, vbs)));
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vt = _mm256_loadu_pd(t + i);
    const __m256d vc = _mm256_loadu_pd(c + i);
    __m256d out = _mm256_sub_pd(cmul(vx, vt), cmul(vc, d));
    if (src != nullptr) out = _mm256_add_pd(out, _mm256_loadu_pd(src + i));
    _mm256_storeu_pd(x + i, out);
  }

  // Scalar tail (odd cell counts).
  for (int i = vec_end; i < n2; i += 2) {
    const double re = g.ds * (a[i] - as[i] + b[i] - bs[i]);
    const double im = g.ds * (a[i + 1] - as[i + 1] + b[i + 1] - bs[i + 1]);
    double xr = x[i] * t[i] - x[i + 1] * t[i + 1] - c[i] * re + c[i + 1] * im;
    double xi = x[i] * t[i + 1] + x[i + 1] * t[i] - c[i] * im - c[i + 1] * re;
    if (src != nullptr) {
      xr += src[i];
      xi += src[i + 1];
    }
    x[i] = xr;
    x[i + 1] = xi;
  }
}
#else
void update_row_avx2(const RowArgs& g) noexcept { update_row(g); }
#endif

const char* to_string(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::Scalar: return "scalar";
    case KernelIsa::Avx2: return "avx2";
  }
  return "scalar";
}

KernelIsa resolve_isa(KernelIsa requested) noexcept {
  if (requested == KernelIsa::Avx2 && avx2_supported()) return KernelIsa::Avx2;
  return KernelIsa::Scalar;
}

void update_row_isa(const RowArgs& args, KernelIsa isa) noexcept {
  if (resolve_isa(isa) == KernelIsa::Avx2) {
    update_row_avx2(args);
  } else {
    update_row(args);
  }
}

}  // namespace emwd::kernels
