// The THIIM component-update kernels.
//
// update_row() is the library's innermost loop: one x-row of one split
// component, in exactly the complex-arithmetic form of the paper's Listings
// 1 and 2 (interleaved re/im doubles, read-modify-write of the component,
// two partner reads at base and shifted index, complex t and c coefficients,
// optional source term).
#pragma once

#include <cstddef>

#include "grid/fieldset.hpp"
#include "kernels/components.hpp"

namespace emwd::kernels {

/// Parameters of one row update.  All pointers address interleaved doubles
/// and already point at the first complex cell of the row (x = x0).
struct RowArgs {
  double* x;             // component being updated (read-modify-write)
  const double* t;       // tX coefficient
  const double* c;       // cX coefficient
  const double* src;     // source term or nullptr
  const double* a;       // partner split part A at base index
  const double* b;       // partner split part B at base index
  std::ptrdiff_t shift;  // partner offset in complex cells (signed)
  double ds;             // diff_sign: +1 => (cur - shifted), -1 => (shifted - cur)
  int n;                 // complex cells in the row
};

/// X[p] = t[p]*X[p] (+ src[p]) - c[p] * (ds*(A[p]-A[p+shift]) + ds*(B[p]-B[p+shift]))
/// with full complex arithmetic (22 flops/cell with src, 20 without).
void update_row(const RowArgs& args) noexcept;

/// Convenience wrapper: updates component `comp` for the x-range [x0, x1)
/// of row (j, k) of `fs`.  Resolves arrays, shift offset and diff sign from
/// the component table.  Under XBoundary::Periodic, the x-shift components
/// peel the wrap-around cell (x = 0 for Ĥ, x = nx-1 for Ê) and read the
/// partner values from the opposite domain edge — the paper's Sec. VI
/// scheme.  The wrapped reads target the *other* field's previous
/// half-step values, so tiling and thread splits stay race-free unchanged.
void update_comp_row(grid::FieldSet& fs, Comp comp, int x0, int x1, int j, int k);

/// One cell with an explicit partner-read x position (the peeled iteration).
void update_cell_wrapped(grid::FieldSet& fs, Comp comp, int i, int i_partner, int j,
                         int k);

/// Offset in complex cells of a component's shifted partner read.
std::ptrdiff_t shift_offset(const grid::Layout& layout, Comp comp);

}  // namespace emwd::kernels
