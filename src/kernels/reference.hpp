// Single-threaded reference sweeps.
//
// The naive sweep is the correctness oracle for every optimized engine: one
// full-grid loop nest per component per half-step, Ĥ components first, then
// Ê components (paper Eqs. 3-4: Ĥ^{n+1/2} from Ê^n, then Ê^{n+1} from
// Ĥ^{n+1/2}).  Kept deliberately simple and obviously correct.
#pragma once

#include "grid/fieldset.hpp"

namespace emwd::kernels {

/// Advance `fs` by `steps` full time steps with the naive sweep.
void reference_step(grid::FieldSet& fs, int steps = 1);

/// One half-step: all six Ĥ (is_h = true) or all six Ê components.
void reference_half_step(grid::FieldSet& fs, bool h_phase);

/// Update a single component over the whole interior (one loop nest, the
/// unit the paper's code-balance analysis counts).
void reference_component_sweep(grid::FieldSet& fs, Comp comp);

}  // namespace emwd::kernels
