// Cache block size model (paper Eq. 11).
//
//   Cs = 16 * Nx * [ 40 * (Dw^2/2 + Dw*(BZ-1)) + 12 * (Dw + Ww) ],
//   Ww = Dw + BZ - 1.
//
// Every point of the diamond-wavefront tile extends over the full x
// dimension (16 bytes per double-complex cell); the 40 arrays cover the
// wavefront-tile area, and the 12 field components add a one-column halo
// ring of extent Dw + Ww.  The auto-tuner prunes its parameter space to
// tiles whose Cs fits the usable share of the last-level cache (the paper's
// rule of thumb: half the L3).
#pragma once

#include <cstdint>

namespace emwd::models {

/// Wavefront tile width Ww = Dw + BZ - 1 (paper Sec. III-C).
constexpr int wavefront_width(int dw, int bz) { return dw + bz - 1; }

/// Eq. 11 cache block size in bytes for one tile.
double cache_block_bytes(int dw, int bz, int nx);

/// Usable LLC share per the paper's rule of thumb (half the cache).
constexpr double usable_cache_fraction() { return 0.5; }

/// True when `num_tgs` concurrent tiles of this size fit the usable LLC.
bool fits_cache(int dw, int bz, int nx, std::uint64_t llc_bytes, int num_tgs);

/// Largest diamond width whose tile fits; 0 when even dw=1 does not.
int max_dw_fitting(int bz, int nx, std::uint64_t llc_bytes, int num_tgs, int dw_limit = 64);

}  // namespace emwd::models
