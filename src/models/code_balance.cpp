#include "models/code_balance.hpp"

namespace emwd::models {

double diamond_bytes_per_lup(int dw) {
  const double writes = 6.0 * (2.0 * dw - 1.0);
  const double reads = 40.0 * dw + 12.0;
  const double area = dw * dw / 2.0;
  return 16.0 * (writes + reads) / area;
}

double diamond_bytes_per_lup_exact(int dw) {
  // This implementation's tiles write all twelve components over dw
  // y-columns each (12*dw complex numbers per x-z cell) and read the 40
  // arrays over dw columns plus a one-column halo of the 12 field arrays on
  // each staggered side.
  const double writes = 12.0 * dw;
  const double reads = 40.0 * dw + 12.0;
  const double area = dw * dw / 2.0;
  return 16.0 * (writes + reads) / area;
}

}  // namespace emwd::models
