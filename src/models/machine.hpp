// Machine descriptions for the performance model.
//
// `haswell18` reproduces the paper's testbed (18-core Xeon E5-2699 v3,
// 2.3 GHz, 45 MiB shared L3, ~50 GB/s applicable memory bandwidth, Turbo
// and CoD off).  `host()` builds a description of the machine we are
// actually running on, with calibration hooks for the single-core in-cache
// update rate.
#pragma once

#include <cstdint>
#include <string>

namespace emwd::models {

struct Machine {
  std::string name = "generic";
  int cores = 1;
  double bandwidth_bytes_per_s = 20e9;
  std::uint64_t llc_bytes = 8ull << 20;
  double ghz = 2.0;
  /// Single-core update rate (MLUP/s) when fully decoupled from DRAM, i.e.
  /// running from cache.  Calibrated by measurement or derived from the
  /// paper's data in emulation mode.
  double pcore_mlups = 8.0;
  /// Parallel efficiency drag per extra thread for tiled engines (barriers,
  /// queue contention); the paper observes ~75 % efficiency at 18 threads.
  double sync_drag = 0.02;
};

/// The paper's 18-core Haswell EP testbed.
Machine haswell18();

/// This host: detected core count and caches; bandwidth and pcore start as
/// estimates and can be overwritten by calibration (see perf_model).
Machine host_machine();

}  // namespace emwd::models
