#include "models/machine.hpp"

#include "util/machine_detect.hpp"

namespace emwd::models {

Machine haswell18() {
  Machine m;
  m.name = "haswell18";
  m.cores = 18;
  m.bandwidth_bytes_per_s = 50e9;   // paper Sec. IV-A "applicable" bandwidth
  m.llc_bytes = 45ull << 20;        // 45 MiB shared L3
  m.ghz = 2.3;
  // Calibrated so the paper's anchor points hold:
  //   spatial saturates at ~6 cores * pcore = Pmem = 41 MLUP/s  -> ~7 MLUP/s
  //   MWD at 18 cores with ~75 % efficiency reaches ~130 MLUP/s -> ~9.6
  // The spatial kernel's in-cache rate is the relevant single-thread number;
  // we use the measured-on-paper 1-thread performance of ~8 MLUP/s.
  m.pcore_mlups = 9.6;
  m.sync_drag = 0.02;
  return m;
}

Machine host_machine() {
  const util::HostInfo info = util::detect_host();
  Machine m;
  m.name = "host";
  m.cores = info.logical_cpus;
  m.llc_bytes = info.l3_bytes;
  // Rough defaults; calibrate_pcore()/calibrate_bandwidth() refine them.
  m.bandwidth_bytes_per_s = 20e9;
  m.ghz = 2.0;
  m.pcore_mlups = 8.0;
  m.sync_drag = 0.02;
  return m;
}

}  // namespace emwd::models
