#include "models/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace emwd::models {

double parallel_efficiency(int threads, double sync_drag) {
  if (threads <= 1) return 1.0;
  return 1.0 / (1.0 + sync_drag * (threads - 1));
}

PerfPrediction predict(const Machine& m, int threads, double bytes_per_lup, bool tiled) {
  PerfPrediction out;
  const double eff = tiled ? parallel_efficiency(threads, m.sync_drag) : 1.0;
  const double p_core = threads * m.pcore_mlups * eff;
  const double p_mem = pmem_mlups(m.bandwidth_bytes_per_s, bytes_per_lup);
  out.bandwidth_bound = p_mem < p_core;
  out.mlups = std::min(p_core, p_mem);
  out.mem_bandwidth_bytes_per_s = out.mlups * 1e6 * bytes_per_lup;
  return out;
}

void calibrate_pcore(Machine& m, double measured_mlups_1thread) {
  if (measured_mlups_1thread > 0.0) m.pcore_mlups = measured_mlups_1thread;
}

double degraded_bytes_per_lup(double ideal_bpl, double overflow) {
  if (overflow <= 1.0) return ideal_bpl;
  // Past the usable cache size, in-tile reuse is progressively lost; blend
  // toward the spatial-blocking balance with the overflow fraction.  The
  // exact shape is measured by the cache simulator; this closed form only
  // guides the auto-tuner's pruning.
  const double lost = std::min(1.0, (overflow - 1.0));
  return ideal_bpl + lost * (spatial_bytes_per_lup() - ideal_bpl);
}

}  // namespace emwd::models
