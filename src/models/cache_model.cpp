#include "models/cache_model.hpp"

namespace emwd::models {

double cache_block_bytes(int dw, int bz, int nx) {
  const double area = dw * static_cast<double>(dw) / 2.0 +
                      static_cast<double>(dw) * (bz - 1);
  const double halo = 12.0 * (dw + wavefront_width(dw, bz));
  return 16.0 * nx * (40.0 * area + halo);
}

bool fits_cache(int dw, int bz, int nx, std::uint64_t llc_bytes, int num_tgs) {
  const double usable = usable_cache_fraction() * static_cast<double>(llc_bytes);
  return cache_block_bytes(dw, bz, nx) * num_tgs <= usable;
}

int max_dw_fitting(int bz, int nx, std::uint64_t llc_bytes, int num_tgs, int dw_limit) {
  int best = 0;
  for (int dw = 1; dw <= dw_limit; ++dw) {
    if (fits_cache(dw, bz, nx, llc_bytes, num_tgs)) best = dw;
  }
  return best;
}

}  // namespace emwd::models
