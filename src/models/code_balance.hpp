// Code balance models (paper Sec. III).
//
// The code balance B_C is the DRAM traffic per lattice-site update.  The
// paper derives:
//   naive   (Eq. 8):  4*(18+12+12)*8 = 1344 bytes/LUP
//   spatial (Eq. 9):  4*(14+12+12)*8 = 1216 bytes/LUP
//   diamond (Eq. 12): 16*[6*(2*Dw-1) + (40*Dw+12)] / (Dw^2/2)
// and the arithmetic intensity I = 248 flops / B_C.
#pragma once

namespace emwd::models {

/// DP flops per lattice-site update (4 nests at 22 + 8 nests at 20).
constexpr int kFlopsPerLup = 248;

/// Eq. 8: every loop nest streams from DRAM; the four z-shift nests pay 18
/// doubles (2 write + 12 base reads + 4 shifted reads), the rest 12.
constexpr double naive_bytes_per_lup() { return 4.0 * (18 + 12 + 12) * 8.0; }

/// Eq. 9: the layer condition removes the 4 shifted doubles of the z-shift
/// nests.  "Optimal spatial blocking".
constexpr double spatial_bytes_per_lup() { return 4.0 * (14 + 12 + 12) * 8.0; }

/// Eq. 12: temporally blocked traffic for diamond width dw.  Writes: six Ĥ
/// components over dw y-columns plus six Ê over dw-1; reads: all 40 arrays
/// over dw columns plus one halo column of the 12 components; amortized
/// over the dw^2/2 LUPs of the diamond.
double diamond_bytes_per_lup(int dw);

/// Same counting adapted to this implementation's exact tile geometry
/// (both Ê and Ĥ footprints span dw y-columns; see DESIGN.md Sec. 3).
double diamond_bytes_per_lup_exact(int dw);

/// Arithmetic intensity in flops/byte for a given code balance.
constexpr double intensity(double bytes_per_lup) { return kFlopsPerLup / bytes_per_lup; }

/// Eq. 10: bandwidth-bottleneck performance limit in MLUP/s.
constexpr double pmem_mlups(double bandwidth_bytes_per_s, double bytes_per_lup) {
  return bandwidth_bytes_per_s / bytes_per_lup / 1e6;
}

}  // namespace emwd::models
