// Bottleneck performance model (paper Sec. III-B, Eq. 10, after Hockney).
//
//   P(t) = min( t * Pcore * eff(t),  bS / B_C )
//
// The paper validates exactly this model: the spatially blocked code is
// predicted at Pmem = 50 GB/s / 1216 B/LUP = 41 MLUP/s and measured at ~40;
// MWD decouples from the bandwidth term and scales with t at ~75 %
// efficiency.  The model needs the code balance B_C (from models/
// code_balance or measured by the cache simulator) and a Machine.
#pragma once

#include "models/code_balance.hpp"
#include "models/machine.hpp"

namespace emwd::models {

struct PerfPrediction {
  double mlups = 0.0;
  double mem_bandwidth_bytes_per_s = 0.0;  // implied DRAM bandwidth draw
  bool bandwidth_bound = false;
};

/// Parallel efficiency of a t-thread tiled run: 1 / (1 + drag*(t-1)).
double parallel_efficiency(int threads, double sync_drag);

/// Predict performance of a code variant with code balance
/// `bytes_per_lup` on `threads` cores of machine `m`.
PerfPrediction predict(const Machine& m, int threads, double bytes_per_lup,
                       bool tiled = false);

/// Calibrate pcore_mlups from a measured single-thread in-cache run.
void calibrate_pcore(Machine& m, double measured_mlups_1thread);

/// Effective code balance for 1WD/MWD when the per-group tile does NOT fit
/// the usable cache: traffic degrades toward the spatial-blocking balance as
/// the overflow factor grows (capacity misses).  `overflow` = required
/// bytes / usable bytes.
double degraded_bytes_per_lup(double ideal_bpl, double overflow);

}  // namespace emwd::models
