// MWD parameter space enumeration (paper Sec. II-A: "the parameter search
// space is narrowed down to diamond tiles that fit within a predefined
// cache size range using a cache block size model").
#pragma once

#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "exec/engine_spec.hpp"
#include "grid/layout.hpp"

namespace emwd::tune {

struct SpaceLimits {
  int max_dw = 32;
  int max_bz = 16;
  /// Minimum x cells per intra-tile x-thread (short rows waste pipelines;
  /// paper Sec. VI warns below ~50 cells).
  int min_x_per_thread = 16;
  /// Domain-decomposition axis of the space: largest z-shard count to try
  /// and the fewest owned z-planes a shard may be left with.
  int max_shards = 8;
  int min_shard_planes = 8;
  /// Largest halo-exchange interval (== overlap depth) to try.  Deeper
  /// intervals trade redundant ghost-plane compute for fewer
  /// synchronizations; the sweet spot is grid- and machine-dependent.
  int max_exchange_interval = 4;
};

/// All thread-group factorizations and tiling parameters for `threads`
/// total threads on the given grid.  Every returned candidate satisfies:
///   tx*tz*tc * num_tgs == threads,  tc in {1,2,3,6},  tz <= bz,
///   dw <= min(ny, max_dw),  bz <= min(nz, max_bz),
///   nx / tx >= min_x_per_thread.
std::vector<exec::MwdParams> enumerate_candidates(int threads, const grid::Extents& grid,
                                                  const SpaceLimits& limits = {});

/// The divisors of n in ascending order.
std::vector<int> divisors(int n);

/// Shard counts worth trying for a domain-decomposed (ShardedEngine) run:
/// ascending K with K <= max_shards, K <= threads (a shard needs a thread)
/// and nz/K >= min_shard_planes.  Always contains K = 1.
std::vector<int> enumerate_shard_counts(int threads, const grid::Extents& grid,
                                        const SpaceLimits& limits = {});

/// Exchange intervals worth trying for `num_shards` z-shards of `grid`:
/// ascending T with T <= max_exchange_interval and, for K > 1, T no deeper
/// than the smallest owned z-block (the Partitioner's feasibility bound —
/// a neighbor must own every plane it donates).  K == 1 needs no exchange,
/// so the axis collapses to {1}.  Never empty.
std::vector<int> enumerate_exchange_intervals(int num_shards, const grid::Extents& grid,
                                              const SpaceLimits& limits = {});

/// Exchange-synchronization modes worth trying for `num_shards` z-shards:
/// barrier (false) always; the overlapped post/wait protocol (true) only
/// when there is more than one shard (it is a no-op otherwise).
std::vector<bool> enumerate_overlap_modes(int num_shards);

/// A complete sharded execution plan as emitted by the sharded tuner: the
/// decomposition knobs plus one MwdParams per shard, tuned against that
/// shard's real extended sub-grid (uneven remainder blocks and PML-heavy
/// boundary shards each get their own tiling).
struct ShardPlan {
  int num_shards = 1;
  int exchange_interval = 1;
  /// Overlapped (post/wait) halo exchange instead of full-stop barriers;
  /// an axis of the sharded search space (see enumerate_overlap_modes).
  bool overlap = false;
  /// Halo transport the plan runs over (dist::make_transport name).  Not a
  /// searched axis — the caller picks the deployment (shm for process
  /// isolation, mpi across nodes) and the tuner prices its per-byte cost
  /// into the exchange term via transport_cost_factor().
  std::string transport = "local";
  std::vector<exec::MwdParams> per_shard;  // size == num_shards

  std::string describe() const;

  /// The engine spec executing this plan:
  /// `sharded(shards=..,interval=..[,overlap],tps=..,inner=mwd(...))` —
  /// per-shard tilings serialize as `inner0=..,inner1=..` when they differ.
  /// Round-trips through the registry: building the spec reproduces
  /// to_sharded_params(*this) bit-exactly, and tuner CSVs serialize plans
  /// as these strings so a plan can be replayed with `--engine`.
  exec::EngineSpec to_spec() const;
};

/// Relative per-byte cost of a halo transport against the in-process
/// baseline ("local" == 1.0): the multiplier the sharded tuner applies to
/// its bandwidth-roof exchange term.  Coarse by design — it ranks plans, it
/// does not predict wall time: shm adds a ring-slot protocol over the same
/// memcpy; mpi adds matching and (potentially) a NIC; socket streams every
/// byte through the kernel twice.  Unknown (user-registered) transports get
/// the conservative mpi-class factor.
double transport_cost_factor(const std::string& transport);

}  // namespace emwd::tune
