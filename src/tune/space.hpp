// MWD parameter space enumeration (paper Sec. II-A: "the parameter search
// space is narrowed down to diamond tiles that fit within a predefined
// cache size range using a cache block size model").
#pragma once

#include <vector>

#include "exec/engine.hpp"
#include "grid/layout.hpp"

namespace emwd::tune {

struct SpaceLimits {
  int max_dw = 32;
  int max_bz = 16;
  /// Minimum x cells per intra-tile x-thread (short rows waste pipelines;
  /// paper Sec. VI warns below ~50 cells).
  int min_x_per_thread = 16;
  /// Domain-decomposition axis of the space: largest z-shard count to try
  /// and the fewest owned z-planes a shard may be left with.
  int max_shards = 8;
  int min_shard_planes = 8;
};

/// All thread-group factorizations and tiling parameters for `threads`
/// total threads on the given grid.  Every returned candidate satisfies:
///   tx*tz*tc * num_tgs == threads,  tc in {1,2,3,6},  tz <= bz,
///   dw <= min(ny, max_dw),  bz <= min(nz, max_bz),
///   nx / tx >= min_x_per_thread.
std::vector<exec::MwdParams> enumerate_candidates(int threads, const grid::Extents& grid,
                                                  const SpaceLimits& limits = {});

/// The divisors of n in ascending order.
std::vector<int> divisors(int n);

/// Shard counts worth trying for a domain-decomposed (ShardedEngine) run:
/// ascending K with K <= max_shards, K <= threads (a shard needs a thread)
/// and nz/K >= min_shard_planes.  Always contains K = 1.
std::vector<int> enumerate_shard_counts(int threads, const grid::Extents& grid,
                                        const SpaceLimits& limits = {});

}  // namespace emwd::tune
