#include "tune/autotuner.hpp"

#include <algorithm>
#include <stdexcept>

#include "em/coefficients.hpp"
#include "grid/fieldset.hpp"
#include "models/cache_model.hpp"
#include "models/code_balance.hpp"
#include "models/perf_model.hpp"

namespace emwd::tune {

Candidate score_candidate(const exec::MwdParams& p, const grid::Extents& grid,
                          const models::Machine& m) {
  Candidate c;
  c.params = p;
  c.cache_bytes = models::cache_block_bytes(p.dw, p.bz, grid.nx) * p.num_tgs;
  const double usable =
      models::usable_cache_fraction() * static_cast<double>(m.llc_bytes);
  c.overflow = usable > 0.0 ? c.cache_bytes / usable : 1e9;
  const double ideal = models::diamond_bytes_per_lup(p.dw);
  c.model_bpl = models::degraded_bytes_per_lup(ideal, c.overflow);
  c.predicted_mlups = models::predict(m, p.threads(), c.model_bpl, /*tiled=*/true).mlups;
  return c;
}

bool candidate_better(const Candidate& a, const Candidate& b) {
  const bool fa = a.overflow <= 1.0, fb = b.overflow <= 1.0;
  if (fa != fb) return fa;
  if (a.predicted_mlups != b.predicted_mlups) return a.predicted_mlups > b.predicted_mlups;
  if (a.params.dw != b.params.dw) return a.params.dw > b.params.dw;
  // Model ties: prefer the intra-tile split shape the paper's measurements
  // favour — 2-3 threads across field components, long x rows per thread.
  const auto comp_pref = [](int tc) { return tc == 2 || tc == 3; };
  if (comp_pref(a.params.tc) != comp_pref(b.params.tc)) return comp_pref(a.params.tc);
  if (a.params.tx != b.params.tx) return a.params.tx < b.params.tx;
  if (a.params.tg_size() != b.params.tg_size()) return a.params.tg_size() > b.params.tg_size();
  if (a.params.bz != b.params.bz) return a.params.bz < b.params.bz;
  return a.params.tz < b.params.tz;
}

TuneResult autotune(const TuneConfig& cfg) {
  const auto params = enumerate_candidates(cfg.threads, cfg.grid, cfg.limits);
  if (params.empty()) throw std::runtime_error("autotune: empty parameter space");

  std::vector<Candidate> scored;
  scored.reserve(params.size());
  for (const auto& p : params) scored.push_back(score_candidate(p, cfg.grid, cfg.machine));

  std::sort(scored.begin(), scored.end(), candidate_better);

  TuneResult result;
  result.ranked = scored;

  if (cfg.timed_refinement) {
    const int k = std::min<int>(cfg.refine_top_k, static_cast<int>(scored.size()));
    grid::Layout layout(cfg.grid);
    grid::FieldSet fs(layout);
    em::build_random_stable(fs, /*seed=*/0x7u);
    double best_time_mlups = -1.0;
    int best_idx = 0;
    for (int i = 0; i < k; ++i) {
      auto engine = exec::make_mwd_engine(scored[static_cast<std::size_t>(i)].params);
      fs.clear_fields();
      engine->run(fs, cfg.refine_steps);
      scored[static_cast<std::size_t>(i)].measured_mlups = engine->stats().mlups;
      if (engine->stats().mlups > best_time_mlups) {
        best_time_mlups = engine->stats().mlups;
        best_idx = i;
      }
    }
    result.ranked = scored;
    result.best_candidate = scored[static_cast<std::size_t>(best_idx)];
  } else {
    result.best_candidate = scored.front();
  }
  result.best = result.best_candidate.params;
  return result;
}

ShardChoice choose_shard_count(const TuneConfig& cfg) {
  ShardChoice best;
  bool first = true;
  for (int k : enumerate_shard_counts(cfg.threads, cfg.grid, cfg.limits)) {
    TuneConfig sub = cfg;
    sub.timed_refinement = false;
    sub.threads = std::max(1, cfg.threads / k);
    sub.grid.nz = std::max(1, cfg.grid.nz / k);  // smallest owned block
    const TuneResult r = autotune(sub);

    // Halo penalty: with exchange interval 1 each interior shard re-streams
    // 2 ghost planes of the 12 field arrays per step, against the ~40-array
    // stream traffic of one step over its own nz planes.
    const double halo_fraction =
        (k > 1) ? (2.0 * 12.0) / (40.0 * static_cast<double>(sub.grid.nz)) : 0.0;
    const double aggregate =
        static_cast<double>(k) * r.best_candidate.predicted_mlups / (1.0 + halo_fraction);

    if (first || aggregate > best.predicted_mlups) {
      best.num_shards = k;
      best.exchange_interval = 1;
      best.inner = r.best_candidate;
      best.predicted_mlups = aggregate;
      first = false;
    }
  }
  return best;
}

}  // namespace emwd::tune
