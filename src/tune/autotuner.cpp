#include "tune/autotuner.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "dist/halo.hpp"
#include "dist/partition.hpp"
#include "em/coefficients.hpp"
#include "grid/fieldset.hpp"
#include "models/cache_model.hpp"
#include "models/code_balance.hpp"
#include "models/perf_model.hpp"
#include "util/timer.hpp"

namespace emwd::tune {

Candidate score_candidate(const exec::MwdParams& p, const grid::Extents& grid,
                          const models::Machine& m) {
  Candidate c;
  c.params = p;
  c.cache_bytes = models::cache_block_bytes(p.dw, p.bz, grid.nx) * p.num_tgs;
  const double usable =
      models::usable_cache_fraction() * static_cast<double>(m.llc_bytes);
  c.overflow = usable > 0.0 ? c.cache_bytes / usable : 1e9;
  const double ideal = models::diamond_bytes_per_lup(p.dw);
  c.model_bpl = models::degraded_bytes_per_lup(ideal, c.overflow);
  c.predicted_mlups = models::predict(m, p.threads(), c.model_bpl, /*tiled=*/true).mlups;
  return c;
}

bool candidate_better(const Candidate& a, const Candidate& b) {
  const bool fa = a.overflow <= 1.0, fb = b.overflow <= 1.0;
  if (fa != fb) return fa;
  if (a.predicted_mlups != b.predicted_mlups) return a.predicted_mlups > b.predicted_mlups;
  if (a.params.dw != b.params.dw) return a.params.dw > b.params.dw;
  // Model ties: prefer the intra-tile split shape the paper's measurements
  // favour — 2-3 threads across field components, long x rows per thread.
  const auto comp_pref = [](int tc) { return tc == 2 || tc == 3; };
  if (comp_pref(a.params.tc) != comp_pref(b.params.tc)) return comp_pref(a.params.tc);
  if (a.params.tx != b.params.tx) return a.params.tx < b.params.tx;
  if (a.params.tg_size() != b.params.tg_size()) return a.params.tg_size() > b.params.tg_size();
  if (a.params.bz != b.params.bz) return a.params.bz < b.params.bz;
  return a.params.tz < b.params.tz;
}

TuneResult autotune(const TuneConfig& cfg) {
  const auto params = enumerate_candidates(cfg.threads, cfg.grid, cfg.limits);
  if (params.empty()) throw std::runtime_error("autotune: empty parameter space");

  std::vector<Candidate> scored;
  scored.reserve(params.size());
  for (const auto& p : params) scored.push_back(score_candidate(p, cfg.grid, cfg.machine));

  std::sort(scored.begin(), scored.end(), candidate_better);

  TuneResult result;
  result.ranked = scored;

  if (cfg.timed_refinement) {
    const int k = std::min<int>(cfg.refine_top_k, static_cast<int>(scored.size()));
    grid::Layout layout(cfg.grid);
    grid::FieldSet fs(layout);
    em::build_random_stable(fs, /*seed=*/0x7u);
    double best_time_mlups = -1.0;
    int best_idx = 0;
    for (int i = 0; i < k; ++i) {
      auto engine = exec::make_mwd_engine(scored[static_cast<std::size_t>(i)].params);
      fs.clear_fields();
      engine->run(fs, cfg.refine_steps);
      scored[static_cast<std::size_t>(i)].measured_mlups = engine->stats().mlups;
      if (engine->stats().mlups > best_time_mlups) {
        best_time_mlups = engine->stats().mlups;
        best_idx = i;
      }
    }
    result.ranked = scored;
    result.best_candidate = scored[static_cast<std::size_t>(best_idx)];
  } else {
    result.best_candidate = scored.front();
  }
  result.best = result.best_candidate.params;
  return result;
}

// ------------------------------------------------------ sharded two-stage

ShardedCandidate score_sharded_candidate(int num_shards, int exchange_interval,
                                         const ShardedTuneConfig& cfg, bool overlap) {
  ShardedCandidate c;
  c.plan.num_shards = num_shards;
  c.plan.exchange_interval = exchange_interval;
  c.plan.overlap = overlap && num_shards > 1;
  c.plan.transport = cfg.transport;

  const int tps = std::max(1, cfg.threads / num_shards);
  const dist::Partitioner part(cfg.grid, num_shards,
                               num_shards > 1 ? exchange_interval : 1);

  // Tune each shard against its REAL extended sub-grid.  A balanced split
  // yields at most a handful of distinct extended heights (remainder blocks,
  // one- vs two-sided ghosts), so memoize the per-height tuning.
  std::map<int, std::pair<Candidate, exec::MwdParams>> by_height;
  double bottleneck_step_seconds = 0.0;
  double total_ext_planes = 0.0;
  for (int s = 0; s < num_shards; ++s) {
    const int ext_nz = part.shard(s).ext_nz();
    auto it = by_height.find(ext_nz);
    if (it == by_height.end()) {
      TuneConfig sub;
      sub.threads = tps;
      sub.grid = {cfg.grid.nx, cfg.grid.ny, ext_nz};
      sub.machine = cfg.machine;
      sub.limits = cfg.limits;
      sub.timed_refinement = false;
      const TuneResult r = autotune(sub);
      it = by_height.emplace(ext_nz, std::make_pair(r.best_candidate, r.best)).first;
    }
    c.per_shard.push_back(it->second.first);
    c.plan.per_shard.push_back(it->second.second);
    const double shard_cells = static_cast<double>(cfg.grid.nx) * cfg.grid.ny * ext_nz;
    const double mlups = std::max(1e-9, it->second.first.predicted_mlups);
    bottleneck_step_seconds = std::max(bottleneck_step_seconds, shard_cells / (mlups * 1e6));
    total_ext_planes += static_cast<double>(ext_nz);
  }

  // Shards advance concurrently, so a round of T steps costs T times the
  // slowest shard's step (the redundant ghost-plane planes are inside each
  // shard's extended grid and thus inside its step time) plus one exchange.
  // At a barrier all shards stop while the full payload streams over the
  // bandwidth roof; the overlapped post/wait protocol exposes only the
  // worst single shard's own pull — the remaining bytes hide behind
  // neighboring shards' compute.
  const std::int64_t halo_bytes = dist::HaloExchange::bytes_per_exchange(part);
  const std::int64_t exposed_bytes =
      c.plan.overlap ? dist::HaloExchange::max_shard_bytes_per_exchange(part)
                     : halo_bytes;
  const double interval = static_cast<double>(exchange_interval);
  c.halo_bytes_per_step = static_cast<double>(halo_bytes) / interval;
  c.exposed_halo_bytes_per_step = static_cast<double>(exposed_bytes) / interval;
  c.redundant_lup_fraction =
      (total_ext_planes - static_cast<double>(cfg.grid.nz)) /
      static_cast<double>(cfg.grid.nz);
  const double halo_seconds = transport_cost_factor(cfg.transport) *
                              static_cast<double>(exposed_bytes) /
                              std::max(1.0, cfg.machine.bandwidth_bytes_per_s);
  const double round_seconds = interval * bottleneck_step_seconds + halo_seconds;
  const double useful = static_cast<double>(cfg.grid.cells());
  c.predicted_mlups = useful * interval / (round_seconds * 1e6);
  return c;
}

ShardedTuneResult autotune_sharded(const ShardedTuneConfig& cfg) {
  ShardedTuneResult result;
  std::vector<int> shard_axis;
  if (cfg.fixed_shards > 0) {
    // A pinned count is still capped by the thread budget (a shard needs a
    // thread) and by what the grid can be partitioned into.
    const int by_threads = std::min(cfg.fixed_shards, std::max(1, cfg.threads));
    shard_axis.push_back(dist::Partitioner::clamp_shards(cfg.grid.nz, by_threads, 1));
  } else {
    shard_axis = enumerate_shard_counts(cfg.threads, cfg.grid, cfg.limits);
  }
  for (int k : shard_axis) {
    std::vector<int> interval_axis;
    if (cfg.fixed_interval > 0) {
      // Clamp a pinned interval to the partition's feasibility bound.
      const int min_owned = std::max(1, cfg.grid.nz / k);
      interval_axis.push_back(k > 1 ? std::min(cfg.fixed_interval, min_owned)
                                    : cfg.fixed_interval);
    } else {
      interval_axis = enumerate_exchange_intervals(k, cfg.grid, cfg.limits);
    }
    for (int t : interval_axis) {
      std::vector<bool> overlap_axis;
      if (cfg.fixed_overlap >= 0) {
        overlap_axis.push_back(cfg.fixed_overlap != 0 && k > 1);
      } else {
        overlap_axis = enumerate_overlap_modes(k);
      }
      for (bool ov : overlap_axis) {
        result.ranked.push_back(score_sharded_candidate(k, t, cfg, ov));
      }
    }
  }
  if (result.ranked.empty()) throw std::runtime_error("autotune_sharded: empty space");
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const ShardedCandidate& a, const ShardedCandidate& b) {
              if (a.predicted_mlups != b.predicted_mlups) {
                return a.predicted_mlups > b.predicted_mlups;
              }
              // Prefer fewer shards, shallower overlap depth and the
              // simpler barrier protocol on model ties.
              if (a.plan.num_shards != b.plan.num_shards) {
                return a.plan.num_shards < b.plan.num_shards;
              }
              if (a.plan.exchange_interval != b.plan.exchange_interval) {
                return a.plan.exchange_interval < b.plan.exchange_interval;
              }
              return a.plan.overlap < b.plan.overlap;
            });

  if (cfg.timed_refinement) {
    const int k = std::min<int>(cfg.refine_top_k, static_cast<int>(result.ranked.size()));
    grid::Layout layout(cfg.grid);
    grid::FieldSet fs(layout);
    em::build_random_stable(fs, /*seed=*/0x7u);
    const std::int64_t useful = static_cast<std::int64_t>(cfg.grid.cells());
    int best_idx = 0;
    double best_mlups = -1.0;
    for (int i = 0; i < k; ++i) {
      ShardedCandidate& cand = result.ranked[static_cast<std::size_t>(i)];
      cand.measured_seconds = time_sharded_plan(cand.plan, fs, cfg);
      cand.measured_mlups = util::mlups(useful, cfg.refine_steps, cand.measured_seconds);
      if (cand.measured_mlups > best_mlups) {
        best_mlups = cand.measured_mlups;
        best_idx = i;
      }
    }
    result.best = result.ranked[static_cast<std::size_t>(best_idx)];
  } else {
    result.best = result.ranked.front();
  }
  return result;
}

double time_sharded_plan(const ShardPlan& plan, grid::FieldSet& fs,
                         const ShardedTuneConfig& cfg) {
  auto engine = dist::make_sharded_engine(to_sharded_params(plan, cfg.numa_bind));
  // prepare() allocates the shard FieldSets outside the timed region; the
  // warmup run scatters once and faults every page in.
  engine->prepare(cfg.grid);
  if (cfg.warmup_steps > 0) engine->run(fs, cfg.warmup_steps);
  double best_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < std::max(1, cfg.repeats); ++r) {
    fs.clear_fields();
    engine->run(fs, cfg.refine_steps);
    best_seconds = std::min(best_seconds, engine->stats().seconds);
  }
  return best_seconds;
}

dist::ShardedParams to_sharded_params(const ShardPlan& plan, bool numa_bind) {
  dist::ShardedParams p;
  p.num_shards = std::max(1, plan.num_shards);
  p.exchange_interval = std::max(1, plan.exchange_interval);
  p.overlap = plan.overlap;
  p.inner = dist::InnerKind::Mwd;
  p.threads_per_shard = plan.per_shard.empty() ? 1 : plan.per_shard.front().threads();
  p.per_shard_mwd = plan.per_shard;
  p.numa_bind = numa_bind;
  p.transport = plan.transport;
  return p;
}

util::Table ShardedTuneResult::to_table() const {
  util::Table t({"shards", "interval", "redundant_frac", "halo_MB_per_step", "overlap",
                 "exposed_halo_MB_per_step", "predicted_mlups", "measured_mlups",
                 "measured_s", "spec"});
  for (const ShardedCandidate& c : ranked) {
    t.add_row({std::to_string(c.plan.num_shards), std::to_string(c.plan.exchange_interval),
               util::fmt_double(c.redundant_lup_fraction, 4),
               util::fmt_double(c.halo_bytes_per_step / (1024.0 * 1024.0), 4),
               c.plan.overlap ? "1" : "0",
               util::fmt_double(c.exposed_halo_bytes_per_step / (1024.0 * 1024.0), 4),
               util::fmt_double(c.predicted_mlups, 5),
               util::fmt_double(c.measured_mlups, 5),
               util::fmt_double(c.measured_seconds, 5),
               // A spec string, not describe(): rows paste straight back
               // into any --engine flag.
               exec::to_string(c.plan.to_spec())});
  }
  return t;
}

std::string ShardedTuneResult::to_csv() const { return to_table().to_csv(); }

ShardChoice choose_shard_count(const TuneConfig& cfg) {
  ShardedTuneConfig scfg;
  scfg.threads = cfg.threads;
  scfg.grid = cfg.grid;
  scfg.machine = cfg.machine;
  scfg.limits = cfg.limits;
  scfg.timed_refinement = false;
  const ShardedTuneResult r = autotune_sharded(scfg);

  ShardChoice best;
  best.num_shards = r.best.plan.num_shards;
  best.exchange_interval = r.best.plan.exchange_interval;
  best.predicted_mlups = r.best.predicted_mlups;
  // Representative inner candidate: the bottleneck (slowest-step) shard.
  const dist::Partitioner part(cfg.grid, best.num_shards,
                               best.num_shards > 1 ? best.exchange_interval : 1);
  std::size_t bottleneck = 0;
  double worst = -1.0;
  for (std::size_t s = 0; s < r.best.per_shard.size(); ++s) {
    const double mlups = std::max(1e-9, r.best.per_shard[s].predicted_mlups);
    const double cells = static_cast<double>(cfg.grid.nx) * cfg.grid.ny *
                         part.shard(static_cast<int>(s)).ext_nz();
    const double step_seconds = cells / (mlups * 1e6);
    if (step_seconds > worst) {
      worst = step_seconds;
      bottleneck = s;
    }
  }
  if (!r.best.per_shard.empty()) best.inner = r.best.per_shard[bottleneck];
  return best;
}

}  // namespace emwd::tune
