#include "tune/space.hpp"

#include <algorithm>
#include <sstream>

namespace emwd::tune {

std::vector<int> divisors(int n) {
  std::vector<int> out;
  for (int d = 1; d <= n; ++d) {
    if (n % d == 0) out.push_back(d);
  }
  return out;
}

std::vector<exec::MwdParams> enumerate_candidates(int threads, const grid::Extents& grid,
                                                  const SpaceLimits& limits) {
  std::vector<exec::MwdParams> out;
  const int max_dw = std::min(limits.max_dw, grid.ny);
  const int max_bz = std::min(limits.max_bz, grid.nz);

  for (int tg : divisors(threads)) {
    const int num_tgs = threads / tg;
    // Factor tg into tx * tz * tc with the component split restricted to the
    // counts that divide six update streams evenly (paper Sec. II-B).
    for (int tc : {1, 2, 3, 6}) {
      if (tg % tc != 0) continue;
      const int rest = tg / tc;
      for (int tz : divisors(rest)) {
        const int tx = rest / tz;
        // Short per-thread rows waste the pipelines (paper Sec. VI); but a
        // tx of 1 must always remain legal, however small the grid.
        if (tx > 1 && grid.nx / tx < limits.min_x_per_thread) continue;
        for (int bz = 1; bz <= max_bz; bz *= 2) {
          if (tz > bz) continue;  // more z-threads than window planes is waste
          for (int dw : {1, 2, 4, 6, 8, 12, 16, 20, 24, 32}) {
            if (dw > max_dw) break;
            exec::MwdParams p;
            p.dw = dw;
            p.bz = bz;
            p.tx = tx;
            p.tz = tz;
            p.tc = tc;
            p.num_tgs = num_tgs;
            out.push_back(p);
          }
        }
      }
    }
  }
  // Deterministic order helps tests and reproducibility.
  std::sort(out.begin(), out.end(), [](const exec::MwdParams& a, const exec::MwdParams& b) {
    if (a.num_tgs != b.num_tgs) return a.num_tgs < b.num_tgs;
    if (a.tc != b.tc) return a.tc < b.tc;
    if (a.tz != b.tz) return a.tz < b.tz;
    if (a.bz != b.bz) return a.bz < b.bz;
    return a.dw < b.dw;
  });
  return out;
}

std::vector<int> enumerate_shard_counts(int threads, const grid::Extents& grid,
                                        const SpaceLimits& limits) {
  std::vector<int> out{1};
  const int cap = std::max(1, std::min(limits.max_shards, threads));
  for (int k = 2; k <= cap; ++k) {
    if (grid.nz / k < limits.min_shard_planes) break;
    out.push_back(k);
  }
  return out;
}

std::vector<int> enumerate_exchange_intervals(int num_shards, const grid::Extents& grid,
                                              const SpaceLimits& limits) {
  if (num_shards <= 1) return {1};
  // The overlap (== interval) must not exceed the smallest owned z-block of
  // a balanced K-way split, or the Partitioner would need planes a neighbor
  // does not own exactly.
  const int min_owned = grid.nz / num_shards;
  const int cap = std::min(std::max(1, limits.max_exchange_interval), std::max(1, min_owned));
  std::vector<int> out;
  for (int t = 1; t <= cap; ++t) out.push_back(t);
  return out;
}

std::vector<bool> enumerate_overlap_modes(int num_shards) {
  if (num_shards <= 1) return {false};
  return {false, true};
}

std::string ShardPlan::describe() const {
  std::ostringstream os;
  os << "plan{K=" << num_shards << ",T=" << exchange_interval
     << (overlap ? ",overlap" : "");
  if (transport != "local") os << ",transport=" << transport;
  os << ",[";
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    if (s) os << " ";
    os << per_shard[s].describe();
  }
  os << "]}";
  return os.str();
}

exec::EngineSpec ShardPlan::to_spec() const {
  exec::EngineSpec s;
  s.kind = "sharded";
  s.add("shards", static_cast<long>(num_shards))
      .add("interval", static_cast<long>(exchange_interval));
  if (overlap) s.add_flag("overlap");
  if (transport != "local") s.add("transport", transport);
  if (!per_shard.empty()) {
    // tps pins the plan's thread budget so the registry reproduces
    // to_sharded_params() exactly instead of re-deriving it from the
    // context's budget.
    s.add("tps", static_cast<long>(per_shard.front().threads()));
    const bool uniform =
        std::all_of(per_shard.begin(), per_shard.end(),
                    [&](const exec::MwdParams& p) { return p == per_shard.front(); });
    if (uniform) {
      s.add("inner", exec::to_spec(per_shard.front()));
    } else {
      for (std::size_t i = 0; i < per_shard.size(); ++i) {
        s.add("inner" + std::to_string(i), exec::to_spec(per_shard[i]));
      }
    }
  }
  return s;
}

double transport_cost_factor(const std::string& transport) {
  if (transport == "local") return 1.0;
  if (transport == "shm") return 1.15;   // same memcpy + ring-slot protocol
  if (transport == "socket") return 4.0; // two kernel crossings per byte
  return 2.0;                            // mpi and unknown transports
}

}  // namespace emwd::tune
