// Auto-tuner for the MWD engine (paper Sec. II-A).
//
// Two stages, mirroring the Girih tuner: (1) model ranking — every
// candidate from the parameter space is scored with the cache block size
// model (Eq. 11) and the bottleneck performance model, discarding tiles
// that overflow the usable LLC share; (2) optional timed refinement — the
// top-K surviving candidates are run for a few time steps on the real
// engine and the fastest wins.
#pragma once

#include <vector>

#include "exec/engine.hpp"
#include "models/machine.hpp"
#include "tune/space.hpp"

namespace emwd::tune {

struct Candidate {
  exec::MwdParams params;
  double cache_bytes = 0.0;      // Eq. 11 * num_tgs
  double overflow = 0.0;         // cache_bytes / usable LLC
  double model_bpl = 0.0;        // predicted bytes/LUP (possibly degraded)
  double predicted_mlups = 0.0;  // bottleneck-model score
  double measured_mlups = 0.0;   // timed refinement result (0 if not timed)
};

struct TuneConfig {
  int threads = 1;
  grid::Extents grid{64, 64, 64};
  models::Machine machine;
  SpaceLimits limits;
  bool timed_refinement = false;  // needs a real FieldSet-sized allocation
  int refine_top_k = 4;
  int refine_steps = 2;
};

struct TuneResult {
  exec::MwdParams best;
  Candidate best_candidate;
  std::vector<Candidate> ranked;  // descending score, post-pruning
};

/// Score a single candidate with the models (stage 1 unit).
Candidate score_candidate(const exec::MwdParams& p, const grid::Extents& grid,
                          const models::Machine& m);

/// Canonical ranking predicate: fitting candidates first, then predicted
/// performance, larger diamonds, component parallelism of 2-3 (the split
/// the paper's tuner converges on, Fig. 7b), smaller x splits (longer
/// per-thread rows), larger groups.
bool candidate_better(const Candidate& a, const Candidate& b);

/// Full auto-tune.  With timed_refinement the tuner allocates a FieldSet of
/// `grid` with synthetic coefficients — callers should size grids so this
/// fits in memory.
TuneResult autotune(const TuneConfig& cfg);

/// Result of extending the search space over z-shard counts (the
/// ShardedEngine's domain decomposition).
struct ShardChoice {
  int num_shards = 1;
  int exchange_interval = 1;
  Candidate inner;               // best per-shard MWD candidate
  double predicted_mlups = 0.0;  // aggregate across shards, halo-penalized
};

/// For every shard count from enumerate_shard_counts, tune MWD on the
/// per-shard grid with the per-shard thread budget and score the aggregate
/// K * per-shard MLUP/s with a halo-traffic penalty; returns the best.
/// Model-stage only (no timed refinement of the sharded runs).
ShardChoice choose_shard_count(const TuneConfig& cfg);

}  // namespace emwd::tune
