// Auto-tuner for the MWD engine (paper Sec. II-A).
//
// Two stages, mirroring the Girih tuner: (1) model ranking — every
// candidate from the parameter space is scored with the cache block size
// model (Eq. 11) and the bottleneck performance model, discarding tiles
// that overflow the usable LLC share; (2) optional timed refinement — the
// top-K surviving candidates are run for a few time steps on the real
// engine and the fastest wins.
//
// The sharded tuner (autotune_sharded) extends the same two-stage scheme
// over the domain-decomposition axes: stage 1 enumerates every feasible
// (num_shards, exchange_interval) pair, tunes one MwdParams per shard
// against that shard's REAL extended sub-grid (uneven remainder blocks and
// ghost-heavy interior shards differ), and scores the aggregate with an
// analytic redundant-LUP + halo-bytes penalty; stage 2 runs the top-K plans
// on the actual ShardedEngine for a truncated step budget (warmup + timed
// repeats, reusing the engine's prepared shard state) and the fastest
// measured plan wins.
#pragma once

#include <string>
#include <vector>

#include "dist/sharded_engine.hpp"
#include "exec/engine.hpp"
#include "exec/engine_registry.hpp"
#include "models/machine.hpp"
#include "tune/space.hpp"
#include "util/csv.hpp"

namespace emwd::tune {

struct Candidate {
  exec::MwdParams params;
  double cache_bytes = 0.0;      // Eq. 11 * num_tgs
  double overflow = 0.0;         // cache_bytes / usable LLC
  double model_bpl = 0.0;        // predicted bytes/LUP (possibly degraded)
  double predicted_mlups = 0.0;  // bottleneck-model score
  double measured_mlups = 0.0;   // timed refinement result (0 if not timed)
};

struct TuneConfig {
  int threads = 1;
  grid::Extents grid{64, 64, 64};
  models::Machine machine;
  SpaceLimits limits;
  bool timed_refinement = false;  // needs a real FieldSet-sized allocation
  int refine_top_k = 4;
  int refine_steps = 2;
};

struct TuneResult {
  exec::MwdParams best;
  Candidate best_candidate;
  std::vector<Candidate> ranked;  // descending score, post-pruning
};

/// Score a single candidate with the models (stage 1 unit).
Candidate score_candidate(const exec::MwdParams& p, const grid::Extents& grid,
                          const models::Machine& m);

/// Canonical ranking predicate: fitting candidates first, then predicted
/// performance, larger diamonds, component parallelism of 2-3 (the split
/// the paper's tuner converges on, Fig. 7b), smaller x splits (longer
/// per-thread rows), larger groups.
bool candidate_better(const Candidate& a, const Candidate& b);

/// Full auto-tune.  With timed_refinement the tuner allocates a FieldSet of
/// `grid` with synthetic coefficients — callers should size grids so this
/// fits in memory.
TuneResult autotune(const TuneConfig& cfg);

/// Result of extending the search space over z-shard counts (the
/// ShardedEngine's domain decomposition).
struct ShardChoice {
  int num_shards = 1;
  int exchange_interval = 1;
  Candidate inner;               // bottleneck shard's MWD candidate
  double predicted_mlups = 0.0;  // aggregate across shards, halo-penalized
};

/// For every feasible (shard count, exchange interval) pair, tune MWD per
/// shard sub-grid with the per-shard thread budget and score the aggregate
/// MLUP/s with the redundant-LUP + halo-traffic penalty; returns the best.
/// Model-stage only (no timed refinement of the sharded runs).  The choice
/// is always feasible: the exchange interval (== overlap depth) never
/// exceeds any shard's owned z-extent.
ShardChoice choose_shard_count(const TuneConfig& cfg);

// ------------------------------------------------------ sharded two-stage

/// One point of the sharded search space: the full per-shard plan plus its
/// analytic score and (for stage-2 survivors) the measured result.
struct ShardedCandidate {
  ShardPlan plan;
  std::vector<Candidate> per_shard;     // model score of each shard's tiling
  double redundant_lup_fraction = 0.0;  // ghost-plane recompute per useful LUP
  double halo_bytes_per_step = 0.0;     // exchange payload amortized over T
  /// Payload bytes per step on the critical path: with overlap on, copies
  /// proceed pairwise so only the worst single shard's pull is exposed; the
  /// rest hides behind neighboring shards' compute.  Equals
  /// halo_bytes_per_step with overlap off.
  double exposed_halo_bytes_per_step = 0.0;
  double predicted_mlups = 0.0;         // aggregate, penalized (stage 1)
  double measured_mlups = 0.0;          // stage 2 (0 if not timed)
  double measured_seconds = 0.0;        // best timed repeat over refine_steps
};

struct ShardedTuneConfig {
  int threads = 1;
  grid::Extents grid{64, 64, 64};
  models::Machine machine;
  SpaceLimits limits;
  /// Pin an axis instead of searching it (0 = search).  Pinned values are
  /// clamped to what the grid can actually support, so the emitted plan is
  /// always feasible.
  int fixed_shards = 0;
  int fixed_interval = 0;
  /// Pin the overlap axis: -1 = search both modes, 0 = barrier only,
  /// 1 = overlapped only (collapses to barrier for single-shard plans).
  int fixed_overlap = -1;
  /// Halo transport the emitted plan runs over; the model multiplies its
  /// exchange term by transport_cost_factor(transport), so a costlier
  /// transport shifts the search toward fewer shards / deeper intervals.
  std::string transport = "local";
  /// Stage 2: run the top-K stage-1 plans on the real ShardedEngine.  Each
  /// plan gets `warmup_steps` untimed steps (also triggers the engine's
  /// prepare() allocation outside the timed region) and `repeats` timed runs
  /// of `refine_steps`; the best repeat is the plan's time.  Requires a
  /// FieldSet-sized allocation of `grid` plus one per shard.
  bool timed_refinement = true;
  int refine_top_k = 3;
  int refine_steps = 4;
  int warmup_steps = 1;
  int repeats = 2;
  bool numa_bind = true;
};

struct ShardedTuneResult {
  ShardedCandidate best;
  std::vector<ShardedCandidate> ranked;  // stage-1 order (predicted desc)

  /// One row per ranked candidate: decomposition knobs, analytic costs,
  /// stage-1 and stage-2 scores, and the serialized plan.
  util::Table to_table() const;
  /// RFC-4180-ish CSV of to_table() — benches archive this as an artifact.
  std::string to_csv() const;
};

/// Analytic (stage-1) score of one (num_shards, exchange_interval, overlap)
/// point: per-shard MWD tuning against the real sub-grids plus the
/// redundant-LUP and halo-bandwidth penalties — with overlap on, only the
/// exposed (worst single shard) halo bytes are charged against the
/// bandwidth roof.  The pair must be feasible for cfg.grid.
ShardedCandidate score_sharded_candidate(int num_shards, int exchange_interval,
                                         const ShardedTuneConfig& cfg,
                                         bool overlap = false);

/// The full two-stage sharded auto-tune described above.
ShardedTuneResult autotune_sharded(const ShardedTuneConfig& cfg);

/// Stage-2 measurement unit, shared with the benches so chosen-vs-exhaustive
/// comparisons use one methodology: build the plan's engine, prepare() it
/// for cfg.grid, run cfg.warmup_steps untimed, then max(1, cfg.repeats)
/// timed runs of cfg.refine_steps on zeroed fields of `fs`; returns the
/// best repeat's wall seconds.  `fs` must have extents cfg.grid; its field
/// values are clobbered.
double time_sharded_plan(const ShardPlan& plan, grid::FieldSet& fs,
                         const ShardedTuneConfig& cfg);

/// Engine parameters executing `plan` (per-shard MWD inners).
dist::ShardedParams to_sharded_params(const ShardPlan& plan, bool numa_bind = true);

// ------------------------------------------------------- plan-cache seam

/// True when building `spec` would invoke a tuner: kind "auto", or
/// "sharded" with inner=auto.  Everything else builds deterministically
/// from its pinned arguments.
bool spec_needs_tuning(const exec::EngineSpec& spec);

/// Resolve the tuned kinds of `spec` to a concrete, fully pinned spec for
/// (ctx.grid, ctx threads, ctx machine): "auto" becomes the tuner's best
/// `mwd(...)`, "sharded(inner=auto,...)" becomes the sharded tuner's plan
/// (ShardPlan::to_spec, with the original numa/transport arguments carried
/// over).  Specs that need no tuning return unchanged.  Building the
/// resolved spec through the registry reproduces the engine the original
/// spec would have built — the "auto" and "sharded" builders themselves
/// construct through this function, and the batch layer's PlanCache
/// memoizes it so jobs sharing a grid shape tune once.
exec::EngineSpec resolve_auto_spec(const exec::EngineSpec& spec,
                                   const exec::BuildContext& ctx);

}  // namespace emwd::tune
