// The composed engine-spec builders that live above exec: "sharded" (the
// dist subsystem, with inner specs, per-shard inner specs and the halo
// transport) and "auto" (the model-ranked MWD tuner).  Registered into
// EngineRegistry::global() through the exec::detail hook, so every caller
// of the registry sees the full kind set without including this layer.
//
// Builder semantics mirror (bit-for-bit) the construction logic the thiim
// facade used before the spec redesign; thiim now lowers its deprecated
// flat fields onto these specs (see thiim::lower_engine_spec).
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "dist/numa.hpp"
#include "dist/partition.hpp"
#include "dist/sharded_engine.hpp"
#include "dist/transport.hpp"
#include "exec/engine_registry.hpp"
#include "tune/autotuner.hpp"

namespace emwd::exec::detail {

namespace {

using exec::BuildContext;
using exec::EngineSpec;

models::Machine context_machine(const BuildContext& ctx) {
  return ctx.machine ? *ctx.machine : models::host_machine();
}

int context_threads(const EngineSpec& spec, const BuildContext& ctx) {
  return static_cast<int>(
      spec.get_int("threads", static_cast<long>(ctx.resolved_threads())));
}

/// `inner0`, `inner1`, ... — the per-shard inner keys of a sharded spec.
bool is_indexed_inner_key(const std::string& key) {
  if (key.size() <= 5 || key.compare(0, 5, "inner") != 0) return false;
  for (std::size_t i = 5; i < key.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(key[i]))) return false;
  }
  return true;
}

std::unique_ptr<exec::Engine> build_sharded(const EngineSpec& spec,
                                            const BuildContext& ctx) {
  static const char* const keys[] = {"shards", "interval", "overlap", "tps",
                                     "numa",   "tune",     "transport", "inner",
                                     "threads", nullptr};
  check_spec_keys(spec, keys, is_indexed_inner_key);
  const int threads = context_threads(spec, ctx);

  // Per-shard inner specs (`inner0=mwd(...),inner1=...`) — plans emitted by
  // the sharded tuner serialize this way (ShardPlan::to_spec).
  std::vector<exec::MwdParams> per_shard;
  for (const EngineSpec::Arg& a : spec.args) {
    if (!is_indexed_inner_key(a.key)) continue;
    const std::optional<EngineSpec> sub = spec.child(a.key);
    // strtol, not stoi: an absurd index must stay an invalid_argument (the
    // grammar's only error type), not escape as std::out_of_range.
    char* end = nullptr;
    const long idx = std::strtol(a.key.c_str() + 5, &end, 10);
    if (*end != '\0' || idx != static_cast<long>(per_shard.size())) {
      throw std::invalid_argument(
          "engine spec: per-shard inners must be contiguous from inner0, got '" +
          a.key + "'");
    }
    per_shard.push_back(exec::mwd_params_from_spec(*sub, /*default_threads=*/1));
  }
  if (!per_shard.empty() && spec.has("inner")) {
    throw std::invalid_argument(
        "engine spec: give either inner=... or inner0=,inner1=,..., not both");
  }

  EngineSpec inner;
  inner.kind = per_shard.empty() ? "naive" : "mwd";
  if (const std::optional<EngineSpec> sub = spec.child("inner")) inner = *sub;

  if (inner.kind == "auto") {
    if (!per_shard.empty()) {
      throw std::invalid_argument("engine spec: inner=auto excludes per-shard inners");
    }
    // The sharded tuner picks the plan (exactly as thiim's
    // EngineKind::Sharded + shard_engine == Auto did); the resolved spec is
    // fully pinned, so this re-enters build_sharded on the fixed-inner path.
    return ctx.registry->build(tune::resolve_auto_spec(spec, ctx), ctx);
  }
  if (spec.has("tune")) {
    throw std::invalid_argument(
        "engine spec: 'tune' applies only with inner=auto (nothing is tuned "
        "for a fixed inner)");
  }

  dist::ShardedParams p;
  p.overlap = spec.get_bool("overlap", false);
  p.exchange_interval = static_cast<int>(std::max(1L, spec.get_int("interval", 1)));
  p.numa_bind = spec.get_bool("numa", true);
  p.transport = spec.scalar("transport").value_or("local");

  int shards = static_cast<int>(spec.get_int("shards", 0));
  if (shards <= 0) shards = dist::NumaTopology::detect().num_nodes;
  const long tps = spec.get_int("tps", 0);
  if (tps > 0) {
    // An explicit per-shard budget opts out of the thread-budget clamp —
    // benches use this to oversubscribe on purpose.
    p.threads_per_shard = static_cast<int>(tps);
    p.num_shards =
        dist::Partitioner::clamp_shards(ctx.grid.nz, shards, p.exchange_interval);
  } else {
    shards = std::min(shards, threads);  // a shard needs a thread of the budget
    p.num_shards =
        dist::Partitioner::clamp_shards(ctx.grid.nz, shards, p.exchange_interval);
    p.threads_per_shard = std::max(1, threads / p.num_shards);
  }

  if (inner.kind == "naive") {
    static const char* const inner_keys[] = {nullptr};
    check_spec_keys(inner, inner_keys);
    p.inner = dist::InnerKind::Naive;
  } else if (inner.kind == "spatial") {
    static const char* const inner_keys[] = {nullptr};
    check_spec_keys(inner, inner_keys);
    p.inner = dist::InnerKind::Spatial;
  } else if (inner.kind == "mwd") {
    p.inner = dist::InnerKind::Mwd;
    if (!per_shard.empty()) {
      p.per_shard_mwd = std::move(per_shard);
    } else if (!inner.args.empty()) {
      p.mwd = exec::mwd_params_from_spec(inner, p.threads_per_shard);
    }
    // A bare `inner=mwd` leaves p.mwd unset: each shard defaults to the
    // 1WD-style one-group-per-thread tiling of its own budget.
  } else {
    throw std::invalid_argument("engine spec: sharded inner must be naive, "
                                "spatial, mwd or auto, got '" + inner.kind + "'");
  }
  return dist::make_sharded_engine(p);
}

/// auto: stage-1 (model-ranked) MWD autotuning — thiim's EngineKind::Auto.
std::unique_ptr<exec::Engine> build_auto(const EngineSpec& spec,
                                         const BuildContext& ctx) {
  return ctx.registry->build(tune::resolve_auto_spec(spec, ctx), ctx);
}

}  // namespace

void register_extended_builders(EngineRegistry& registry) {
  registry.register_builder("sharded", build_sharded);
  registry.register_builder("auto", build_auto);
}

}  // namespace emwd::exec::detail

namespace emwd::tune {

bool spec_needs_tuning(const exec::EngineSpec& spec) {
  if (spec.kind == "auto") return true;
  if (spec.kind != "sharded") return false;
  const std::optional<exec::EngineSpec> inner = spec.child("inner");
  return inner && inner->kind == "auto";
}

exec::EngineSpec resolve_auto_spec(const exec::EngineSpec& spec,
                                   const exec::BuildContext& ctx) {
  using exec::detail::check_spec_keys;
  using exec::detail::context_machine;
  using exec::detail::context_threads;

  if (spec.kind == "auto") {
    static const char* const keys[] = {"threads", nullptr};
    check_spec_keys(spec, keys);
    TuneConfig tc;
    tc.threads = context_threads(spec, ctx);
    tc.grid = ctx.grid;
    tc.machine = context_machine(ctx);
    return exec::to_spec(autotune(tc).best);
  }

  if (!spec_needs_tuning(spec)) return spec;

  // sharded(...,inner=auto): the two-stage sharded tuner picks the plan.
  if (spec.has("tps")) {
    // Fail loudly rather than silently dropping a pin: the tuner derives
    // the per-shard budget itself.
    throw std::invalid_argument(
        "engine spec: 'tps' does not apply with inner=auto (the tuner "
        "derives the per-shard thread budget)");
  }
  ShardedTuneConfig sc;
  sc.threads = context_threads(spec, ctx);
  sc.grid = ctx.grid;
  sc.machine = context_machine(ctx);
  sc.fixed_shards = static_cast<int>(std::max(0L, spec.get_int("shards", 0)));
  sc.fixed_interval = static_cast<int>(std::max(0L, spec.get_int("interval", 0)));
  // Pin the overlap axis when present in either form (`overlap` or
  // `overlap=0|1`); absent means search it.
  if (spec.has("overlap")) sc.fixed_overlap = spec.get_bool("overlap", false) ? 1 : 0;
  // Validate the transport name before the (expensive) tuning sweep, with
  // the registry's own listing error; the plan then prices and carries it.
  sc.transport = spec.scalar("transport").value_or("local");
  dist::require_transport(sc.transport);
  const std::string tune_mode = spec.scalar("tune").value_or("model");
  if (tune_mode != "model" && tune_mode != "measured") {
    throw std::invalid_argument("engine spec: sharded tune mode must be "
                                "'model' or 'measured', got '" + tune_mode + "'");
  }
  sc.timed_refinement = tune_mode == "measured";

  exec::EngineSpec resolved = autotune_sharded(sc).best.plan.to_spec();
  // Carry the decomposition-independent arguments of the original spec —
  // to_sharded_params/make_sharded_engine honored them before this seam.
  // (transport rides inside the plan now: to_spec() emits it.)
  if (!spec.get_bool("numa", true)) resolved.add("numa", 0L);
  return resolved;
}

}  // namespace emwd::tune
