// Public facade: a complete THIIM solar-cell / photonics simulation.
//
// Typical use (see examples/):
//
//   thiim::SimulationConfig cfg;
//   cfg.grid = {64, 64, 128};
//   cfg.wavelength_cells = 24;
//   thiim::Simulation sim(cfg);
//   auto ag = sim.materials().add(em::silver());
//   em::GeometryBuilder(sim.materials()).layer(ag, 0, 12);
//   sim.finalize();
//   sim.add_plane_wave(em::SourceField::Ex, cfg.grid.nz - 12, 1.0);
//   sim.run(200);
//   double e = sim.total_energy();
#pragma once

#include <complex>
#include <memory>
#include <optional>
#include <vector>

#include "em/coefficients.hpp"
#include "em/geometry.hpp"
#include "em/material.hpp"
#include "em/observables.hpp"
#include "em/pml.hpp"
#include "em/source.hpp"
#include "exec/engine.hpp"
#include "exec/engine_spec.hpp"
#include "grid/fieldset.hpp"
#include "io/snapshot.hpp"

namespace emwd::thiim {

enum class EngineKind { Naive, Spatial, Mwd, Auto, Sharded };

/// How EngineKind::Sharded + shard_engine == Auto picks its plan: Model
/// ranks (num_shards, exchange_interval, per-shard MwdParams) with the
/// analytic cost model only; Measured additionally times the top plans on
/// the real ShardedEngine for a few steps (slower startup, better plans).
enum class ShardTuneMode { Model, Measured };

struct SimulationConfig {
  grid::Extents grid{64, 64, 64};
  double wavelength_cells = 24.0;  // incident wavelength in mesh cells
  double cfl = 0.5;                // pseudo-time step CFL factor
  em::PmlSpec pml{};               // default: absorbing in z, as in the paper
  /// Lateral boundary along x: periodic matches the paper's production
  /// setup ("horizontally periodic boundary conditions", Sec. I-A).
  grid::XBoundary x_boundary = grid::XBoundary::Dirichlet;

  /// Engine selection: a spec string from the canonical grammar (see
  /// src/exec/README.md), e.g. "naive", "mwd(dw=8,bz=2,tc=3)",
  /// "sharded(shards=4,interval=2,overlap,inner=auto)".  When non-empty it
  /// wins and the deprecated flat fields below are ignored; the engine is
  /// built through exec::EngineRegistry::global().
  std::string engine_spec;

  int threads = 0;                 // 0: hardware concurrency

  // --------------------------------------------------------------------
  // DEPRECATED flat engine fields.  Honored only while `engine_spec` is
  // empty: the constructor lowers them onto a spec (see lower_engine_spec)
  // and builds through the same registry path.  New code should write a
  // spec string instead.
  // --------------------------------------------------------------------
  EngineKind engine = EngineKind::Auto;
  std::optional<exec::MwdParams> mwd;  // explicit MWD parameters (else tuned)
  /// EngineKind::Sharded only: z-shards (with a fixed inner engine, 0 = one
  /// per detected NUMA node; with shard_engine == Auto, 0 = let the tuner
  /// search the shard-count axis), the engine advancing each shard
  /// (Naive/Spatial/Mwd; Auto runs the sharded tuner, emitting per-shard
  /// MwdParams), and steps between halo exchanges (0 = 1 for fixed inner
  /// engines; for Auto, 0 = let the tuner search the interval axis).
  int num_shards = 0;
  EngineKind shard_engine = EngineKind::Naive;
  int shard_exchange_interval = 0;
  /// Sharded + Auto only: Model (default) scores plans analytically;
  /// Measured also times the top plans on the real ShardedEngine.
  ShardTuneMode shard_tune_mode = ShardTuneMode::Model;
  /// Sharded + Mwd only: explicit per-shard MWD parameters (shard s runs
  /// shard_mwd[s]); empty defers to `mwd` for every shard.
  std::vector<exec::MwdParams> shard_mwd;
  /// Sharded only: overlapped (post/wait) halo exchange instead of the
  /// full-stop barriers.  With shard_engine == Auto this pins the tuner's
  /// overlap axis on; leave false there to let the tuner search it.
  bool shard_overlap = false;
};

/// Lower the deprecated flat engine fields of `cfg` to the engine spec the
/// constructor builds (the shim behind SimulationConfig::engine_spec).
/// Exposed so callers and tests can see exactly what a flat config means.
/// Throws std::invalid_argument for contradictory fields
/// (shard_engine == Sharded).
exec::EngineSpec lower_engine_spec(const SimulationConfig& cfg);

/// Pooled resources a Simulation may borrow instead of allocating and
/// building its own — the seam the batch subsystem's EnginePool uses so
/// successive jobs on the same grid shape skip the 40-array allocation and
/// engine (re-)construction.  Both pointers are optional and non-owning;
/// they must outlive the Simulation.
///   engine: used as-is (cfg's engine selection is ignored).  The caller
///           guarantees it was built for cfg.grid; engines keep per-shape
///           prepared state (MWD tiling cache, sharded PreparableEngine
///           FieldSets), which is exactly what pooling amortizes.
///   fields: layout interior must equal cfg.grid (else std::invalid_argument).
///           The set is clear_all()-ed on borrow, so results are bit-exact
///           with a freshly constructed Simulation.
struct BorrowedState {
  exec::Engine* engine = nullptr;
  grid::FieldSet* fields = nullptr;
};

class Simulation {
 public:
  explicit Simulation(const SimulationConfig& cfg);
  Simulation(const SimulationConfig& cfg, const BorrowedState& borrowed);

  /// Material map; paint geometry before finalize().
  em::MaterialGrid& materials() { return materials_; }
  const em::MaterialGrid& materials() const { return materials_; }

  /// Build coefficients from materials + PML; must be called before sources
  /// or run().  Re-callable after material changes (sources are reset).
  void finalize();

  void add_plane_wave(em::SourceField which, int k0, std::complex<double> amplitude);
  void add_point_dipole(em::SourceField which, int i, int j, int k,
                        std::complex<double> amplitude);

  /// Advance up to `steps` THIIM iterations; returns the number actually
  /// advanced.  That is `steps` unless an installed step hook stopped the
  /// run early (the scheduler's preemption path).
  int run(int steps);

  /// Install a periodic safe-boundary hook: during run(), fn(total steps
  /// done since finalize()) fires every `every` steps at a step boundary —
  /// steps_done() is already updated when it runs, so fn may snapshot the
  /// fields.  Return false from fn to stop the run early.  Pass every <= 0
  /// or a null fn to uninstall.
  void set_step_hook(int every, std::function<bool(int)> fn);

  /// Snapshot metadata for the current state (extents, steps_done,
  /// x boundary; meta carries the engine spec string).
  io::SnapshotInfo snapshot_info() const;

  /// Serialize the field state (snapshot format v2, see src/io/README.md).
  void save_snapshot(std::ostream& os) const;
  void save_snapshot_file(const std::string& path) const;

  /// Restore fields + step counter from a snapshot.  Requires finalize()
  /// first (coefficients are rebuilt from geometry, only fields travel);
  /// throws std::runtime_error when the stored extents or x boundary do not
  /// match this simulation's configuration.  After restore, continuing with
  /// run() is bit-exact with a run that was never interrupted.
  io::SnapshotInfo restore_snapshot(std::istream& is);
  io::SnapshotInfo restore_snapshot_file(const std::string& path);

  /// Iterate until the relative field change per `check_every` steps drops
  /// below `tol` (or `max_steps`).  Returns the last relative change.
  double run_until_converged(double tol, int max_steps, int check_every = 10);

  double total_energy() const { return em::total_energy(*fields_); }
  double electric_energy() const { return em::electric_energy(*fields_); }
  std::vector<double> absorption_by_material() const {
    return em::absorption_by_material(*fields_, materials_, params_.omega);
  }
  std::complex<double> E_at(int axis, int i, int j, int k) const {
    return em::parent_E(*fields_, axis, i, j, k);
  }
  std::complex<double> H_at(int axis, int i, int j, int k) const {
    return em::parent_H(*fields_, axis, i, j, k);
  }

  grid::FieldSet& fields() { return *fields_; }
  const grid::FieldSet& fields() const { return *fields_; }
  const em::ThiimParams& params() const { return params_; }
  const exec::Engine& engine() const { return *engine_; }
  const exec::EngineStats& last_stats() const { return engine_->stats(); }
  int steps_done() const { return steps_done_; }

 private:
  SimulationConfig cfg_;
  grid::Layout layout_;
  // Owned storage backs the pointers unless the BorrowedState ctor supplied
  // pooled instances; all code paths go through the pointers.
  std::unique_ptr<grid::FieldSet> owned_fields_;
  grid::FieldSet* fields_ = nullptr;
  em::MaterialGrid materials_;
  em::PmlProfiles pml_;
  em::ThiimParams params_;
  std::unique_ptr<exec::Engine> owned_engine_;
  exec::Engine* engine_ = nullptr;
  bool finalized_ = false;
  int steps_done_ = 0;
  std::function<bool(int)> step_hook_;
  int step_hook_every_ = 0;
};

}  // namespace emwd::thiim
