#include "thiim/simulation.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "exec/engine_registry.hpp"
#include "fault/inject.hpp"
#include "models/machine.hpp"
#include "util/machine_detect.hpp"

namespace emwd::thiim {

exec::EngineSpec lower_engine_spec(const SimulationConfig& cfg) {
  exec::EngineSpec spec;
  switch (cfg.engine) {
    case EngineKind::Naive:
      spec.kind = "naive";
      break;
    case EngineKind::Spatial:
      spec.kind = "spatial";
      break;
    case EngineKind::Mwd:
      // An explicit MwdParams pins every field; a bare "mwd" defers to the
      // registry's 1WD-style default (one thread group per budget thread).
      spec = cfg.mwd ? exec::to_spec(*cfg.mwd) : exec::EngineSpec{"mwd", {}};
      break;
    case EngineKind::Auto:
      spec.kind = "auto";
      break;
    case EngineKind::Sharded: {
      if (cfg.shard_engine == EngineKind::Sharded) {
        throw std::invalid_argument("SimulationConfig: shard_engine cannot be Sharded");
      }
      spec.kind = "sharded";
      if (cfg.num_shards > 0) spec.add("shards", static_cast<long>(cfg.num_shards));
      if (cfg.shard_exchange_interval > 0) {
        spec.add("interval", static_cast<long>(cfg.shard_exchange_interval));
      }
      if (cfg.shard_overlap) spec.add_flag("overlap");
      switch (cfg.shard_engine) {
        case EngineKind::Auto:
          spec.add("inner", std::string("auto"));
          if (cfg.shard_tune_mode == ShardTuneMode::Measured) {
            spec.add("tune", std::string("measured"));
          }
          break;
        case EngineKind::Naive:
          spec.add("inner", std::string("naive"));
          break;
        case EngineKind::Spatial:
          spec.add("inner", std::string("spatial"));
          break;
        default:  // Mwd
          if (!cfg.shard_mwd.empty()) {
            for (std::size_t s = 0; s < cfg.shard_mwd.size(); ++s) {
              spec.add("inner" + std::to_string(s), exec::to_spec(cfg.shard_mwd[s]));
            }
          } else if (cfg.mwd) {
            spec.add("inner", exec::to_spec(*cfg.mwd));
          } else {
            spec.add("inner", std::string("mwd"));
          }
          break;
      }
      break;
    }
  }
  return spec;
}

Simulation::Simulation(const SimulationConfig& cfg)
    : Simulation(cfg, BorrowedState{}) {}

Simulation::Simulation(const SimulationConfig& cfg, const BorrowedState& borrowed)
    : cfg_(cfg),
      layout_(cfg.grid),
      materials_(layout_),
      params_(em::make_params(cfg.wavelength_cells, cfg.cfl)) {
  if (borrowed.fields) {
    if (!(borrowed.fields->layout().interior() == cfg.grid)) {
      throw std::invalid_argument(
          "Simulation: borrowed FieldSet extents do not match cfg.grid");
    }
    fields_ = borrowed.fields;
    // Recycled storage must be indistinguishable from a fresh allocation:
    // zero every array (stale coefficients, sources and halos included).
    fields_->clear_all();
  } else {
    owned_fields_ = std::make_unique<grid::FieldSet>(layout_);
    fields_ = owned_fields_.get();
  }
  fields_->set_x_boundary(cfg.x_boundary);

  if (borrowed.engine) {
    engine_ = borrowed.engine;
  } else {
    // One construction path: an explicit spec string, or the deprecated flat
    // fields lowered onto the identical spec, both built by the registry.
    const exec::EngineSpec spec = cfg.engine_spec.empty()
                                      ? lower_engine_spec(cfg)
                                      : exec::parse_engine_spec(cfg.engine_spec);
    exec::BuildContext ctx;
    ctx.grid = cfg.grid;
    ctx.threads = cfg.threads > 0 ? cfg.threads : util::detect_host().logical_cpus;
    ctx.machine = models::host_machine();
    owned_engine_ = exec::EngineRegistry::global().build(spec, ctx);
    engine_ = owned_engine_.get();
  }
}

void Simulation::finalize() {
  pml_ = em::PmlProfiles(layout_, cfg_.pml, params_.h);
  em::build_coefficients(*fields_, materials_, pml_, params_);
  fields_->clear_fields();
  finalized_ = true;
  steps_done_ = 0;
}

void Simulation::add_plane_wave(em::SourceField which, int k0,
                                std::complex<double> amplitude) {
  if (!finalized_) throw std::logic_error("Simulation: finalize() before adding sources");
  em::add_plane_wave(*fields_, materials_, pml_, params_, which, k0, amplitude);
}

void Simulation::add_point_dipole(em::SourceField which, int i, int j, int k,
                                  std::complex<double> amplitude) {
  if (!finalized_) throw std::logic_error("Simulation: finalize() before adding sources");
  em::add_point_dipole(*fields_, materials_, pml_, params_, which, i, j, k, amplitude);
}

int Simulation::run(int steps) {
  if (!finalized_) throw std::logic_error("Simulation: finalize() before run()");
  fault::maybe_fail("engine.step");
  if (!step_hook_ || step_hook_every_ <= 0) {
    engine_->run(*fields_, steps);
    steps_done_ += steps;
    return steps;
  }
  // Thread the hook through the engine's segmented runner, translating the
  // engine's per-run step count into the absolute steps_done() the hook
  // sees.  steps_done_ is updated before the hook fires so it may snapshot.
  const int base = steps_done_;
  engine_->set_step_hook(step_hook_every_, [this, base](int done) {
    steps_done_ = base + done;
    // The hook boundary is the one place a hooked run can stop cleanly, so
    // it is also where an injected step failure surfaces (the catch below
    // rolls steps_done_ back, exactly like a real engine fault).
    fault::maybe_fail("engine.step");
    return step_hook_(steps_done_);
  });
  int advanced = 0;
  try {
    advanced = engine_->run_hooked(*fields_, steps);
  } catch (...) {
    engine_->set_step_hook(0, nullptr);
    steps_done_ = base;
    throw;
  }
  engine_->set_step_hook(0, nullptr);
  steps_done_ = base + advanced;
  return advanced;
}

void Simulation::set_step_hook(int every, std::function<bool(int)> fn) {
  step_hook_every_ = fn ? every : 0;
  step_hook_ = step_hook_every_ > 0 ? std::move(fn) : nullptr;
}

double Simulation::run_until_converged(double tol, int max_steps, int check_every) {
  if (!finalized_) throw std::logic_error("Simulation: finalize() before run()");
  grid::FieldSet snapshot(layout_);
  double change = 1.0;
  int done = 0;
  while (done < max_steps) {
    snapshot.copy_fields_from(*fields_);
    const int chunk = std::min(check_every, max_steps - done);
    const int advanced = run(chunk);
    done += advanced;
    change = em::relative_change(*fields_, snapshot);
    if (change < tol || advanced < chunk) break;  // converged or hook-stopped
  }
  return change;
}

io::SnapshotInfo Simulation::snapshot_info() const {
  io::SnapshotInfo info;
  info.extents = cfg_.grid;
  info.steps_done = steps_done_;
  info.x_boundary = cfg_.x_boundary;
  info.meta = cfg_.engine_spec;
  return info;
}

void Simulation::save_snapshot(std::ostream& os) const {
  io::write_snapshot(os, *fields_, snapshot_info());
}

void Simulation::save_snapshot_file(const std::string& path) const {
  io::write_snapshot_file(path, *fields_, snapshot_info());
}

io::SnapshotInfo Simulation::restore_snapshot(std::istream& is) {
  if (!finalized_) {
    throw std::logic_error("Simulation: finalize() before restore_snapshot()");
  }
  const io::SnapshotInfo info = io::read_snapshot(is, *fields_);
  if (info.x_boundary != cfg_.x_boundary) {
    throw std::runtime_error("snapshot: x_boundary mismatch with configuration");
  }
  steps_done_ = info.steps_done;
  return info;
}

io::SnapshotInfo Simulation::restore_snapshot_file(const std::string& path) {
  if (!finalized_) {
    throw std::logic_error("Simulation: finalize() before restore_snapshot()");
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("snapshot: cannot open " + path);
  }
  return restore_snapshot(is);
}

}  // namespace emwd::thiim
