#include "thiim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

#include "dist/numa.hpp"
#include "dist/partition.hpp"
#include "dist/sharded_engine.hpp"
#include "models/machine.hpp"
#include "tune/autotuner.hpp"
#include "util/machine_detect.hpp"

namespace emwd::thiim {

Simulation::Simulation(const SimulationConfig& cfg)
    : cfg_(cfg),
      layout_(cfg.grid),
      fields_(layout_),
      materials_(layout_),
      params_(em::make_params(cfg.wavelength_cells, cfg.cfl)) {
  fields_.set_x_boundary(cfg.x_boundary);
  int threads = cfg.threads;
  if (threads <= 0) threads = util::detect_host().logical_cpus;

  switch (cfg.engine) {
    case EngineKind::Naive:
      engine_ = exec::make_naive_engine(threads);
      break;
    case EngineKind::Spatial:
      engine_ = exec::make_spatial_engine(threads);
      break;
    case EngineKind::Mwd: {
      exec::MwdParams p = cfg.mwd.value_or(exec::MwdParams{});
      if (!cfg.mwd) p.num_tgs = threads;  // default: 1WD-style, one TG/thread
      engine_ = exec::make_mwd_engine(p);
      break;
    }
    case EngineKind::Auto: {
      tune::TuneConfig tc;
      tc.threads = threads;
      tc.grid = cfg.grid;
      tc.machine = models::host_machine();
      engine_ = exec::make_mwd_engine(tune::autotune(tc).best);
      break;
    }
    case EngineKind::Sharded: {
      if (cfg.shard_engine == EngineKind::Sharded) {
        throw std::invalid_argument("SimulationConfig: shard_engine cannot be Sharded");
      }
      dist::ShardedParams p;
      if (cfg.shard_engine == EngineKind::Auto) {
        // Two-stage sharded tuner: per-shard MWD against the real sub-grids,
        // with the shard-count / exchange-interval axes searched unless the
        // config pins them; Measured mode also times the top plans on the
        // real ShardedEngine before committing.
        tune::ShardedTuneConfig sc;
        sc.threads = threads;
        sc.grid = cfg.grid;
        sc.machine = models::host_machine();
        sc.fixed_shards = std::max(0, cfg.num_shards);
        sc.fixed_interval = std::max(0, cfg.shard_exchange_interval);
        if (cfg.shard_overlap) sc.fixed_overlap = 1;  // else: search the axis
        sc.timed_refinement = cfg.shard_tune_mode == ShardTuneMode::Measured;
        p = tune::to_sharded_params(tune::autotune_sharded(sc).best.plan);
      } else {
        int shards = cfg.num_shards;
        if (shards <= 0) shards = dist::NumaTopology::detect().num_nodes;
        shards = std::min(shards, threads);  // a shard needs a thread of the budget
        p.overlap = cfg.shard_overlap;
        p.exchange_interval = std::max(1, cfg.shard_exchange_interval);
        p.num_shards =
            dist::Partitioner::clamp_shards(cfg.grid.nz, shards, p.exchange_interval);
        p.threads_per_shard = std::max(1, threads / p.num_shards);
        switch (cfg.shard_engine) {
          case EngineKind::Naive:
            p.inner = dist::InnerKind::Naive;
            break;
          case EngineKind::Spatial:
            p.inner = dist::InnerKind::Spatial;
            break;
          default:  // Mwd
            p.inner = dist::InnerKind::Mwd;
            p.mwd = cfg.mwd;
            p.per_shard_mwd = cfg.shard_mwd;
            break;
        }
      }
      engine_ = dist::make_sharded_engine(p);
      break;
    }
  }
}

void Simulation::finalize() {
  pml_ = em::PmlProfiles(layout_, cfg_.pml, params_.h);
  em::build_coefficients(fields_, materials_, pml_, params_);
  fields_.clear_fields();
  finalized_ = true;
  steps_done_ = 0;
}

void Simulation::add_plane_wave(em::SourceField which, int k0,
                                std::complex<double> amplitude) {
  if (!finalized_) throw std::logic_error("Simulation: finalize() before adding sources");
  em::add_plane_wave(fields_, materials_, pml_, params_, which, k0, amplitude);
}

void Simulation::add_point_dipole(em::SourceField which, int i, int j, int k,
                                  std::complex<double> amplitude) {
  if (!finalized_) throw std::logic_error("Simulation: finalize() before adding sources");
  em::add_point_dipole(fields_, materials_, pml_, params_, which, i, j, k, amplitude);
}

void Simulation::run(int steps) {
  if (!finalized_) throw std::logic_error("Simulation: finalize() before run()");
  engine_->run(fields_, steps);
  steps_done_ += steps;
}

double Simulation::run_until_converged(double tol, int max_steps, int check_every) {
  if (!finalized_) throw std::logic_error("Simulation: finalize() before run()");
  grid::FieldSet snapshot(layout_);
  double change = 1.0;
  int done = 0;
  while (done < max_steps) {
    snapshot.copy_fields_from(fields_);
    const int chunk = std::min(check_every, max_steps - done);
    run(chunk);
    done += chunk;
    change = em::relative_change(fields_, snapshot);
    if (change < tol) break;
  }
  return change;
}

}  // namespace emwd::thiim
