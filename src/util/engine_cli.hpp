// The unified --engine flag: every bench and example selects its engine
// through one flag carrying a spec string from the canonical grammar
// (src/exec/README.md):
//
//   --engine "mwd(dw=8,bz=2,tc=3)"
//   --engine "sharded(shards=4,interval=2,overlap,inner=auto)"
//
// Lives in util (not bench) so examples and tools don't include across
// top-level directories; bench/common.hpp re-exports these under
// emwd::bench for the figure benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "exec/engine_spec.hpp"
#include "util/cli.hpp"

namespace emwd::util {

/// Declare the unified --engine flag on a util::Cli.
inline void add_engine_flag(util::Cli& cli, const std::string& default_spec) {
  cli.add_flag("engine",
               "engine spec, e.g. mwd(dw=8,bz=2,tc=3) or "
               "sharded(shards=4,inner=auto); see src/exec/README.md",
               default_spec);
}

/// Parse-and-validate the --engine flag.  Prints the parse error and exits
/// non-zero on malformed input, so every binary reports specs identically.
inline exec::EngineSpec engine_spec_from_cli(const util::Cli& cli) {
  const std::string text = cli.get("engine");
  try {
    return exec::parse_engine_spec(text);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bad --engine: %s\n", e.what());
    std::exit(2);
  }
}

/// Strip `--engine=SPEC` / `--engine SPEC` out of argv for binaries whose
/// remaining flags belong to another parser (google-benchmark); returns the
/// spec, or `default_spec` when the flag is absent.
inline std::string consume_engine_flag(int& argc, char** argv,
                                       const std::string& default_spec) {
  std::string spec = default_spec;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      spec = argv[i] + 9;
      continue;
    }
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      spec = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return spec;
}

}  // namespace emwd::util
