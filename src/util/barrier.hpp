// Thread-group synchronization primitives.
//
// MWD thread groups synchronize once per half-step per wavefront position,
// which can be hundreds of thousands of times per run.  A centralized
// sense-reversing spin barrier keeps that cheap for the small group sizes
// (1..6 threads typically) used inside a tile, and falls back to yielding so
// oversubscribed runs (more threads than cores) still make progress.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace emwd::util {

/// Sense-reversing centralized spin barrier for a fixed set of participants.
class SpinBarrier {
 public:
  explicit SpinBarrier(int participants) noexcept
      : participants_(participants), remaining_(participants), sense_(false) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all participants have arrived.  Safe to reuse immediately.
  void arrive_and_wait() noexcept {
    if (participants_ == 1) return;
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      // Spin briefly, then yield: on an oversubscribed machine the partner
      // thread may need our core to make progress.
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > 256) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  int participants() const noexcept { return participants_; }

 private:
  const int participants_;
  std::atomic<int> remaining_;
  std::atomic<bool> sense_;
};

/// Counts barrier episodes; used by tests and the sync-overhead model.
class CountingBarrier {
 public:
  explicit CountingBarrier(int participants) : barrier_(participants) {}

  void arrive_and_wait() noexcept {
    barrier_.arrive_and_wait();
    episodes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total arrive_and_wait calls across all threads.
  std::int64_t episodes() const noexcept { return episodes_.load(std::memory_order_relaxed); }

 private:
  SpinBarrier barrier_;
  std::atomic<std::int64_t> episodes_{0};
};

}  // namespace emwd::util
