// Aligned storage helpers.
//
// Stencil field arrays must start on cache-line (and preferably page)
// boundaries so that the blocking models, the cache simulator and the real
// hardware agree about which accesses share a line.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>

namespace emwd::util {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal allocator that over-aligns every allocation to `Align` bytes.
/// Usable with std::vector so field storage stays cache-line aligned.
template <class T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;

  static_assert(Align >= alignof(T), "alignment must be at least alignof(T)");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc();
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

/// Round `n` up to the next multiple of `mult` (mult must be nonzero).
constexpr std::size_t round_up(std::size_t n, std::size_t mult) {
  return ((n + mult - 1) / mult) * mult;
}

}  // namespace emwd::util
