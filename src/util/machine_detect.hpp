// Host hardware introspection (Linux sysfs / sysconf).
//
// Used to size default grids and to seed the machine model with real cache
// sizes when running natively rather than in paper-emulation mode.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace emwd::util {

struct HostInfo {
  int logical_cpus = 1;
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 256 * 1024;
  std::size_t l3_bytes = 8ull * 1024 * 1024;
  std::size_t total_ram_bytes = 0;
  std::string cpu_model = "unknown";
  /// CPU packages (from topology/physical_package_id; >= 1).
  int num_sockets = 1;
  /// NUMA nodes (from /sys/devices/system/node; >= 1).
  int num_numa_nodes = 1;
  /// Logical cpu ids per NUMA node; always num_numa_nodes non-empty entries
  /// (the single-node fallback holds every cpu).
  std::vector<std::vector<int>> numa_node_cpus;
};

/// Best-effort detection; every field has a sane fallback.
HostInfo detect_host();

/// Parse a sysfs cpulist string ("0-3,8,10-11") into cpu ids; malformed
/// pieces are skipped.  Exposed for tests.
std::vector<int> parse_cpulist(const std::string& text);

}  // namespace emwd::util
