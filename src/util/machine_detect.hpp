// Host hardware introspection (Linux sysfs / sysconf).
//
// Used to size default grids and to seed the machine model with real cache
// sizes when running natively rather than in paper-emulation mode.
#pragma once

#include <cstddef>
#include <string>

namespace emwd::util {

struct HostInfo {
  int logical_cpus = 1;
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 256 * 1024;
  std::size_t l3_bytes = 8ull * 1024 * 1024;
  std::size_t total_ram_bytes = 0;
  std::string cpu_model = "unknown";
};

/// Best-effort detection; every field has a sane fallback.
HostInfo detect_host();

}  // namespace emwd::util
