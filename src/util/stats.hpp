// Small online statistics used by the auto-tuner and the benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace emwd::util {

/// Accumulates a sample set and reports summary statistics.
class Stats {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  /// Interpolated percentile, q in [0, 100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

/// Relative difference |a-b| / max(|a|,|b|,eps); symmetric, safe near zero.
double rel_diff(double a, double b, double eps = 1e-300);

}  // namespace emwd::util
