#include "util/json.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace emwd::util {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("json: " + what + " at offset " + std::to_string(pos));
}

/// Byte-offset parser over the whole document.  Depth-bounded so arbitrarily
/// nested byte soup ("[[[[[...") throws instead of overflowing the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue run() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != s_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail(pos_, "unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n]) ++n;
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return JsonValue(string());
      case 't':
        if (literal("true")) return JsonValue(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (literal("false")) return JsonValue(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (literal("null")) return JsonValue();
        fail(pos_, "invalid literal");
      default: return number();
    }
  }

  JsonValue object(int depth) {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected member name");
      std::string key = string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(members));
      }
      fail(pos_, "expected ',' or '}'");
    }
  }

  JsonValue array(int depth) {
    expect('[');
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(items));
      }
      fail(pos_, "expected ',' or ']'");
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size()) fail(pos_, "truncated \\u escape");
      const char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos_ - 1, "invalid \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail(pos_, "unterminated string");
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail(pos_, "unescaped control character");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= s_.size()) fail(pos_, "truncated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (pos_ + 1 >= s_.size() || s_[pos_] != '\\' || s_[pos_ + 1] != 'u') {
              fail(pos_, "unpaired surrogate");
            }
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail(pos_, "invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(pos_, "unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(pos_ - 1, "invalid escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      fail(start, "invalid value");
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
        fail(pos_, "invalid fraction");
      }
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
        fail(pos_, "invalid exponent");
      }
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    const std::string token = s_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail(start, "invalid number");
    // Over/underflow clamps to +-inf / 0, which strtod reports via errno;
    // accept it (RFC 8259 leaves range behavior to implementations).
    return JsonValue(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_fail(const char* want, JsonValue::Type got) {
  static const char* names[] = {"null", "bool", "number", "string", "array", "object"};
  throw std::invalid_argument(std::string("json: expected ") + want + ", got " +
                              names[static_cast<int>(got)]);
}

}  // namespace

JsonValue JsonValue::parse(const std::string& text) { return Parser(text).run(); }

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) type_fail("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) type_fail("number", type_);
  return num_;
}

long JsonValue::as_int() const {
  const double d = as_number();
  // Casting a double outside long's range is UB, so range-check before the
  // cast.  -LONG_MIN is 2^63, a power of two and thus exact as a double;
  // [-2^63, 2^63) survives the cast, 2^63 itself does not fit.  NaN fails
  // both comparisons and is rejected too.
  const double bound = -static_cast<double>(std::numeric_limits<long>::min());
  if (!(d >= -bound && d < bound)) {
    throw std::invalid_argument("json: integer out of range: " + std::to_string(d));
  }
  const long v = static_cast<long>(d);
  if (static_cast<double>(v) != d) {
    throw std::invalid_argument("json: expected integer, got " + std::to_string(d));
  }
  return v;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) type_fail("string", type_);
  return str_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::Array) type_fail("array", type_);
  return arr_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::Object) type_fail("object", type_);
  return obj_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {
template <typename T, typename Fn>
T member_or(const JsonValue& v, const std::string& key, T fallback, Fn get) {
  const JsonValue* m = v.find(key);
  if (!m || m->is_null()) return fallback;
  try {
    return get(*m);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("json: member \"" + key + "\": " + e.what());
  }
}
}  // namespace

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  return member_or(*this, key, fallback, [](const JsonValue& m) { return m.as_bool(); });
}

double JsonValue::get_double(const std::string& key, double fallback) const {
  return member_or(*this, key, fallback,
                   [](const JsonValue& m) { return m.as_number(); });
}

long JsonValue::get_int(const std::string& key, long fallback) const {
  return member_or(*this, key, fallback, [](const JsonValue& m) { return m.as_int(); });
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  return member_or(*this, key, fallback,
                   [](const JsonValue& m) { return m.as_string(); });
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) { return '"' + json_escape(s) + '"'; }

}  // namespace emwd::util
