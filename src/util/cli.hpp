// Minimal command-line flag parsing for benches and examples.
//
// Supports `--name=value`, `--name value` and boolean `--name` forms with
// typed lookups and a generated --help listing.  Deliberately tiny: no
// subcommands, no positional-argument grammar.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace emwd::util {

class Cli {
 public:
  /// Declare a flag before parse() so it appears in help and is validated.
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value = "");

  /// Parse argv; returns false (and fills error()) on unknown or malformed
  /// flags.  `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback = "") const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Comma-separated list of integers ("64,128,192").
  std::vector<long> get_int_list(const std::string& name,
                                 const std::vector<long>& fallback) const;

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }
  std::string help_text(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
  };
  std::map<std::string, Flag> declared_;
  std::map<std::string, std::string> values_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace emwd::util
