// CSV / aligned-table emission for bench output.
//
// Every bench prints the series from the paper's figures as machine-readable
// CSV rows plus a human-readable aligned table, so EXPERIMENTS.md can quote
// them directly.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace emwd::util {

/// Column-oriented table; all cells are formatted strings.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; throws std::invalid_argument on column-count mismatch.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  void add_row_numeric(const std::vector<double>& values, int precision = 6);

  std::size_t rows() const { return cells_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::string>& row(std::size_t r) const { return cells_.at(r); }

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  /// Space-padded aligned text table for terminal output.
  std::string to_aligned() const;

  /// Print aligned table followed by CSV block, each under a caption.
  void print(std::ostream& os, const std::string& caption) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format a double with `precision` significant digits (shortest form).
std::string fmt_double(double v, int precision = 6);

/// CSV-escape a single cell.
std::string csv_escape(const std::string& cell);

}  // namespace emwd::util
