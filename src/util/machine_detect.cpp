#include "util/machine_detect.hpp"

#include <fstream>
#include <sstream>
#include <thread>

namespace emwd::util {
namespace {

/// Parse "32K" / "2048K" / "45M" style sysfs cache size strings into bytes.
std::size_t parse_size(const std::string& text) {
  std::istringstream is(text);
  double value = 0.0;
  is >> value;
  char suffix = '\0';
  is >> suffix;
  switch (suffix) {
    case 'K':
    case 'k':
      return static_cast<std::size_t>(value * 1024.0);
    case 'M':
    case 'm':
      return static_cast<std::size_t>(value * 1024.0 * 1024.0);
    case 'G':
    case 'g':
      return static_cast<std::size_t>(value * 1024.0 * 1024.0 * 1024.0);
    default:
      return static_cast<std::size_t>(value);
  }
}

std::string read_line(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  if (f) std::getline(f, line);
  return line;
}

}  // namespace

HostInfo detect_host() {
  HostInfo info;
  info.logical_cpus = static_cast<int>(std::thread::hardware_concurrency());
  if (info.logical_cpus <= 0) info.logical_cpus = 1;

  // Walk cpu0's cache indices; level+type identify L1d/L2/L3.
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    const std::string level = read_line(dir + "level");
    if (level.empty()) continue;
    const std::string type = read_line(dir + "type");
    const std::string size = read_line(dir + "size");
    if (size.empty()) continue;
    const std::size_t bytes = parse_size(size);
    if (level == "1" && type == "Data") info.l1d_bytes = bytes;
    if (level == "2" && (type == "Unified" || type == "Data")) info.l2_bytes = bytes;
    if (level == "3") info.l3_bytes = bytes;
  }

  {
    std::ifstream meminfo("/proc/meminfo");
    std::string key;
    long long kb = 0;
    while (meminfo >> key >> kb) {
      if (key == "MemTotal:") {
        info.total_ram_bytes = static_cast<std::size_t>(kb) * 1024;
        break;
      }
      meminfo.ignore(1024, '\n');
    }
  }

  {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
      const auto pos = line.find("model name");
      if (pos != std::string::npos) {
        const auto colon = line.find(':');
        if (colon != std::string::npos && colon + 2 <= line.size()) {
          info.cpu_model = line.substr(colon + 2);
        }
        break;
      }
    }
  }

  return info;
}

}  // namespace emwd::util
