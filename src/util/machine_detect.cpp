#include "util/machine_detect.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

namespace emwd::util {
namespace {

/// Parse "32K" / "2048K" / "45M" style sysfs cache size strings into bytes.
std::size_t parse_size(const std::string& text) {
  std::istringstream is(text);
  double value = 0.0;
  is >> value;
  char suffix = '\0';
  is >> suffix;
  switch (suffix) {
    case 'K':
    case 'k':
      return static_cast<std::size_t>(value * 1024.0);
    case 'M':
    case 'm':
      return static_cast<std::size_t>(value * 1024.0 * 1024.0);
    case 'G':
    case 'g':
      return static_cast<std::size_t>(value * 1024.0 * 1024.0 * 1024.0);
    default:
      return static_cast<std::size_t>(value);
  }
}

std::string read_line(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  if (f) std::getline(f, line);
  return line;
}

/// Highest numbered physical_package_id over all cpus, or -1 when unreadable.
int max_package_id(int logical_cpus) {
  int max_id = -1;
  for (int cpu = 0; cpu < logical_cpus; ++cpu) {
    const std::string line =
        read_line("/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
                  "/topology/physical_package_id");
    if (line.empty()) continue;
    try {
      max_id = std::max(max_id, std::stoi(line));
    } catch (const std::exception&) {
    }
  }
  return max_id;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::istringstream is(text);
  std::string piece;
  while (std::getline(is, piece, ',')) {
    const auto dash = piece.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(piece));
      } else {
        const int lo = std::stoi(piece.substr(0, dash));
        const int hi = std::stoi(piece.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (const std::exception&) {
      // Skip malformed pieces; callers fall back to a single node.
    }
  }
  return cpus;
}

HostInfo detect_host() {
  HostInfo info;
  info.logical_cpus = static_cast<int>(std::thread::hardware_concurrency());
  if (info.logical_cpus <= 0) info.logical_cpus = 1;

  // Walk cpu0's cache indices; level+type identify L1d/L2/L3.
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    const std::string level = read_line(dir + "level");
    if (level.empty()) continue;
    const std::string type = read_line(dir + "type");
    const std::string size = read_line(dir + "size");
    if (size.empty()) continue;
    const std::size_t bytes = parse_size(size);
    if (level == "1" && type == "Data") info.l1d_bytes = bytes;
    if (level == "2" && (type == "Unified" || type == "Data")) info.l2_bytes = bytes;
    if (level == "3") info.l3_bytes = bytes;
  }

  {
    std::ifstream meminfo("/proc/meminfo");
    std::string key;
    long long kb = 0;
    while (meminfo >> key >> kb) {
      if (key == "MemTotal:") {
        info.total_ram_bytes = static_cast<std::size_t>(kb) * 1024;
        break;
      }
      meminfo.ignore(1024, '\n');
    }
  }

  {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
      const auto pos = line.find("model name");
      if (pos != std::string::npos) {
        const auto colon = line.find(':');
        if (colon != std::string::npos && colon + 2 <= line.size()) {
          info.cpu_model = line.substr(colon + 2);
        }
        break;
      }
    }
  }

  // NUMA topology: nodeN directories with a readable cpulist.  Node numbers
  // may have gaps (offline nodes) and some nodes have no cpus at all (CXL /
  // HBM memory-only nodes) — both are skipped without ending the scan, since
  // shard placement only cares about nodes that can run threads.
  for (int node = 0; node < 256; ++node) {
    const std::string cpulist = read_line("/sys/devices/system/node/node" +
                                          std::to_string(node) + "/cpulist");
    if (cpulist.empty()) continue;
    std::vector<int> cpus = parse_cpulist(cpulist);
    if (!cpus.empty()) info.numa_node_cpus.push_back(std::move(cpus));
  }
  if (info.numa_node_cpus.empty()) {
    // Single-node fallback: all logical cpus on one node.
    std::vector<int> all(static_cast<std::size_t>(info.logical_cpus));
    for (int c = 0; c < info.logical_cpus; ++c) all[static_cast<std::size_t>(c)] = c;
    info.numa_node_cpus.push_back(std::move(all));
  }
  info.num_numa_nodes = static_cast<int>(info.numa_node_cpus.size());

  info.num_sockets = std::max(1, max_package_id(info.logical_cpus) + 1);

  return info;
}

}  // namespace emwd::util
