#include "util/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#if defined(_WIN32)
#error "util/socket: POSIX-only (the serve subsystem targets Linux)"
#endif

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fault/inject.hpp"

namespace emwd::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Fault hook: when `point` fires, skip the syscall and synthesize an EINTR
/// failure instead, so tests drive the *real* retry branches below without a
/// signal handler.  Returns true when the syscall should be suppressed.
bool inject_eintr(const char* point) {
  if (fault::enabled() && fault::should_fire(point)) {
    errno = EINTR;
    return true;
  }
  return false;
}

/// write() the whole buffer; false on peer-gone, throws on other errors.
bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a vanished client must surface as EPIPE, not SIGPIPE.
    const ssize_t w = inject_eintr("socket.eintr.send")
                          ? -1
                          : ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET || errno == ENOTCONN) return false;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// read() exactly n bytes.  0 = EOF hit (either before any byte or midway),
/// 1 = complete, throws on real errors.
bool read_all(int fd, char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = inject_eintr("socket.eintr.recv")
                          ? -1
                          : ::recv(fd, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET || errno == ENOTCONN) return false;
      throw_errno("recv");
    }
    if (r == 0) return false;  // peer closed
    off += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void UniqueFd::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

UniqueFd listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("listen_unix: path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen " + path);
  return fd;
}

UniqueFd connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("connect_unix: path empty or too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  // EINTR from a blocking connect() leaves the attempt in progress on some
  // platforms, but for a fresh AF_UNIX stream socket a clean retry is safe
  // and is what every caller wants.
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    throw_errno("connect " + path);
  }
  return fd;
}

UniqueFd accept_connection(const UniqueFd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return UniqueFd(fd);
    if (errno == EINTR) continue;
    // The stop path shuts the listener down; accept then fails with EINVAL
    // (Linux) or ECONNABORTED.  Report "no more connections", not an error.
    if (errno == EINVAL || errno == ECONNABORTED || errno == EBADF) return UniqueFd();
    throw_errno("accept");
  }
}

bool send_frame(int fd, const std::string& payload) {
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  char header[4] = {static_cast<char>((n >> 24) & 0xFF),
                    static_cast<char>((n >> 16) & 0xFF),
                    static_cast<char>((n >> 8) & 0xFF), static_cast<char>(n & 0xFF)};
  if (!write_all(fd, header, sizeof(header))) return false;
  return write_all(fd, payload.data(), payload.size());
}

std::optional<std::string> recv_frame(int fd, std::uint32_t max_payload) {
  char header[4];
  if (!read_all(fd, header, sizeof(header))) return std::nullopt;
  const std::uint32_t n = (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0])) << 24) |
                          (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1])) << 16) |
                          (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2])) << 8) |
                          static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (n > max_payload) {
    throw std::invalid_argument("recv_frame: announced payload of " +
                                std::to_string(n) + " bytes exceeds limit of " +
                                std::to_string(max_payload));
  }
  std::string payload(n, '\0');
  if (n > 0 && !read_all(fd, payload.data(), n)) return std::nullopt;
  return payload;
}

}  // namespace emwd::util
