#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace emwd::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row has " + std::to_string(cells.size()) +
                                " cells, expected " + std::to_string(headers_.size()));
  }
  cells_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt_double(v, precision));
  add_row(std::move(cells));
}

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_aligned() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << row[c];
      for (std::size_t p = row[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) rule += "  ";
    rule.append(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : cells_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& caption) const {
  os << "== " << caption << " ==\n" << to_aligned() << "--- csv: " << caption << " ---\n"
     << to_csv() << "--- end csv ---\n";
}

}  // namespace emwd::util
