#include "util/barrier.hpp"

// SpinBarrier is header-only; this translation unit anchors the module in the
// build and hosts nothing else at the moment.
