// Wall-clock timing helpers used by engines, benches and the auto-tuner.
#pragma once

#include <chrono>
#include <cstdint>

namespace emwd::util {

/// Monotonic wall-clock stopwatch with double-precision seconds.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Convert a (cells, steps, seconds) measurement into MLUP/s, the paper's
/// performance metric.  One LUP = one grid cell through one full time step
/// (all 12 component updates).
inline double mlups(std::int64_t cells, std::int64_t steps, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(cells) * static_cast<double>(steps) / seconds / 1e6;
}

}  // namespace emwd::util
