#include "util/cli.hpp"

// GCC 12 emits a spurious -Wrestrict from inlined std::string assignment at
// -O3 (GCC bug 105651); the code is plain string handling.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <cstdlib>
#include <sstream>

namespace emwd::util {

void Cli::add_flag(const std::string& name, const std::string& help,
                   const std::string& default_value) {
  declared_[name] = Flag{help, default_value};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      // (assign+append rather than operator+ to dodge a GCC 12 -Wrestrict
      // false positive in inlined std::string concatenation)
      error_.assign("unexpected positional argument: ");
      error_.append(arg);
      return false;
    }
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      name = arg.substr(2);
      // `--flag value` form if the next token is not another flag and the
      // declared default is non-boolean-ish; otherwise boolean true.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "1";
      }
    }
    if (!declared_.count(name)) {
      error_.assign("unknown flag: --");
      error_.append(name);
      return false;
    }
    values_[name] = value;
  }
  return true;
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  auto d = declared_.find(name);
  if (d != declared_.end() && !d->second.default_value.empty()) return d->second.default_value;
  return fallback;
}

long Cli::get_int(const std::string& name, long fallback) const {
  const std::string v = get(name);
  if (v.empty()) return fallback;
  char* end = nullptr;
  const long out = std::strtol(v.c_str(), &end, 10);
  return (end && *end == '\0') ? out : fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const std::string v = get(name);
  if (v.empty()) return fallback;
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  return (end && *end == '\0') ? out : fallback;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const std::string v = get(name);
  if (v.empty()) return fallback;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<long> Cli::get_int_list(const std::string& name,
                                    const std::vector<long>& fallback) const {
  const std::string v = get(name);
  if (v.empty()) return fallback;
  std::vector<long> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const long x = std::strtol(item.c_str(), &end, 10);
    if (!end || *end != '\0') return fallback;
    out.push_back(x);
  }
  return out.empty() ? fallback : out;
}

std::string Cli::help_text(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : declared_) {
    os << "  --" << name;
    if (!flag.default_value.empty()) os << " (default: " << flag.default_value << ")";
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace emwd::util
