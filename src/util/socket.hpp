// Unix-domain sockets + length-prefixed framing (Linux/POSIX; the serve
// subsystem's transport).
//
// Frames are a 4-byte big-endian payload length followed by that many bytes
// — the same framing on both directions of the emwdd protocol.  All reads
// and writes loop over partial transfers and retry EINTR; errors throw
// std::system_error except where the contract says "connection closed",
// which is an expected event (a client hanging up) and reported as a value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace emwd::util {

/// RAII file descriptor: closes on destruction, move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

  /// shutdown(SHUT_RDWR): unblocks a thread sitting in recv/accept on this
  /// fd without racing the close (the fd number stays reserved).
  void shutdown_both() const;

 private:
  int fd_ = -1;
};

/// Bind + listen on a Unix-domain socket at `path` (an existing socket file
/// is unlinked first).  Throws std::system_error on failure.
UniqueFd listen_unix(const std::string& path, int backlog = 16);

/// Connect to the Unix-domain socket at `path`.  Throws std::system_error.
UniqueFd connect_unix(const std::string& path);

/// Accept one connection; returns an invalid fd when the listening socket
/// was shut down (server stop), throws std::system_error on real errors.
UniqueFd accept_connection(const UniqueFd& listener);

/// Write one frame (4-byte big-endian length + payload).  Returns false
/// when the peer has gone away (EPIPE/ECONNRESET/shutdown), throws
/// std::system_error on other errors.  Thread-safety is the caller's job.
bool send_frame(int fd, const std::string& payload);

/// Read one frame.  nullopt = orderly close (EOF before a new header) or
/// peer reset; throws std::invalid_argument when the announced length
/// exceeds `max_payload` (protocol violation) and std::system_error on real
/// errors.  EOF in the middle of a frame counts as a reset, not an error.
std::optional<std::string> recv_frame(int fd, std::uint32_t max_payload);

}  // namespace emwd::util
