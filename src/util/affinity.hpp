// Thread -> cpu-set pinning (Linux sched affinity; no-op elsewhere).
//
// Child threads inherit the calling thread's mask, which is how whole
// engine thread teams stay on the cpus their owner was pinned to: the
// dist subsystem pins shard teams to NUMA nodes and the batch scheduler
// pins job executors to their resource slot before spawning the engine.
#pragma once

#include <vector>

namespace emwd::util {

/// Pin the calling thread to exactly `cpus` (logical ids).  Returns false
/// (affinity untouched) for an empty list, out-of-range ids only, or a
/// platform without sched affinity.
bool pin_current_thread(const std::vector<int>& cpus);

/// A thread's allowed-cpu list, for restoring after a pinned region (the
/// process may itself run under taskset/cgroup restrictions).
struct ThreadAffinity {
  std::vector<int> cpus;
  bool valid = false;
};

ThreadAffinity get_thread_affinity();
void restore_thread_affinity(const ThreadAffinity& saved);

}  // namespace emwd::util
