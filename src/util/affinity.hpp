// Thread -> cpu-set pinning (Linux sched affinity; no-op elsewhere).
//
// Child threads inherit the calling thread's mask, which is how whole
// engine thread teams stay on the cpus their owner was pinned to: the
// dist subsystem pins shard teams to NUMA nodes and the batch scheduler
// pins job executors to their resource slot before spawning the engine.
#pragma once

#include <vector>

namespace emwd::util {

/// Pin the calling thread to exactly `cpus` (logical ids).  Returns false
/// (affinity untouched) for an empty list, out-of-range ids only, or a
/// platform without sched affinity.
bool pin_current_thread(const std::vector<int>& cpus);

/// A thread's allowed-cpu list, for restoring after a pinned region (the
/// process may itself run under taskset/cgroup restrictions).
struct ThreadAffinity {
  std::vector<int> cpus;
  bool valid = false;
};

ThreadAffinity get_thread_affinity();
void restore_thread_affinity(const ThreadAffinity& saved);

/// RAII affinity scope: saves the calling thread's mask on construction and
/// restores it on destruction — including exceptional exits, so a throwing
/// job can never leak a pinned cpuset into a pooled executor thread (the
/// batch scheduler wraps every job run in one, and the sharded engine's
/// per-shard NUMA binding is built on it).
class ScopedAffinity {
 public:
  /// Save the current mask; restore it when the scope ends.
  ScopedAffinity() : saved_(get_thread_affinity()) {}

  /// Save the current mask, then pin to `cpus` (best effort; pinned()
  /// reports whether it took).  The saved mask is restored either way, so
  /// any pinning done inside the scope — by this ctor or by code running
  /// under it — is undone on exit.
  explicit ScopedAffinity(const std::vector<int>& cpus)
      : saved_(get_thread_affinity()), pinned_(pin_current_thread(cpus)) {}

  ~ScopedAffinity() { restore_thread_affinity(saved_); }

  ScopedAffinity(const ScopedAffinity&) = delete;
  ScopedAffinity& operator=(const ScopedAffinity&) = delete;

  bool pinned() const { return pinned_; }

  /// Keep whatever mask is current: skip the restore (for intentional
  /// thread-lifetime pins like the scheduler's executor slot pin).
  void release() { saved_.valid = false; }

 private:
  ThreadAffinity saved_;
  bool pinned_ = false;
};

}  // namespace emwd::util
