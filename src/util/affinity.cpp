#include "util/affinity.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace emwd::util {

#if defined(__linux__)

bool pin_current_thread(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  if (!any) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

ThreadAffinity get_thread_affinity() {
  ThreadAffinity saved;
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) != 0) return saved;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &set)) saved.cpus.push_back(c);
  }
  saved.valid = !saved.cpus.empty();
  return saved;
}

void restore_thread_affinity(const ThreadAffinity& saved) {
  if (saved.valid) pin_current_thread(saved.cpus);
}

#else  // !__linux__

bool pin_current_thread(const std::vector<int>&) { return false; }
ThreadAffinity get_thread_affinity() { return {}; }
void restore_thread_affinity(const ThreadAffinity&) {}

#endif

}  // namespace emwd::util
