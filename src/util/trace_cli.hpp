// The unified --trace flag: every traced binary (spectrum_sweep,
// sharded_demo, bench_shard_scaling, emwdd) arms obs span tracing the same
// way and writes the same Chrome trace-event JSON — load the file in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
//   --trace run.json            arm tracing, export on exit
//   --trace-ring 131072         per-thread event capacity (drops counted)
//
// Lives in util (not obs) for the same reason as engine_cli.hpp: examples
// and benches include one helper instead of reaching across top-level
// directories for flag plumbing.
#pragma once

#include <cstdio>
#include <string>

#include "obs/trace.hpp"
#include "util/cli.hpp"

namespace emwd::util {

/// Declare --trace / --trace-ring on a util::Cli.
inline void add_trace_flags(util::Cli& cli) {
  cli.add_flag("trace", "write a Chrome trace-event JSON (Perfetto) to FILE", "");
  cli.add_flag("trace-ring", "per-thread trace event capacity", "65536");
}

/// Arm tracing per the parsed flags; the destructor stops tracing and
/// exports the file.  Inert when --trace was not given.
class TraceFromCli {
 public:
  explicit TraceFromCli(const util::Cli& cli) : path_(cli.get("trace")) {
    if (path_.empty()) return;
    obs::TraceConfig cfg;
    const long ring = cli.get_int("trace-ring", 65536);
    if (ring > 0) cfg.ring_capacity = static_cast<std::size_t>(ring);
    obs::start_tracing(cfg);
  }

  ~TraceFromCli() {
    if (path_.empty()) return;
    obs::stop_tracing();
    const obs::TraceStats st = obs::trace_stats();
    if (obs::write_chrome_trace(path_)) {
      std::fprintf(stderr,
                   "wrote trace %s (%zu events, %zu threads, %zu dropped%s)\n",
                   path_.c_str(), st.events, st.threads, st.dropped,
                   st.nesting_ok ? "" : ", NESTING BROKEN");
    } else {
      std::fprintf(stderr, "failed to write trace %s\n", path_.c_str());
    }
  }

  TraceFromCli(const TraceFromCli&) = delete;
  TraceFromCli& operator=(const TraceFromCli&) = delete;

 private:
  std::string path_;
};

}  // namespace emwd::util
