// Minimal JSON value type + strict recursive-descent parser.
//
// The serve subsystem's wire protocol and batch::Job::from_json need to
// read JSON produced by arbitrary clients; this parser accepts exactly
// RFC-8259 JSON (objects, arrays, strings with escapes, numbers, literals),
// throws std::invalid_argument with the offending byte offset on anything
// else and never crashes on byte soup (depth-bounded, fuzz-tested).  Object
// member order is preserved so serializers that re-emit a document are
// deterministic.  Numbers are stored as double; emitters in this codebase
// print with 17 significant digits, which strtod round-trips bit-exactly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace emwd::util {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<JsonValue>;
  /// Members in document order (objects here are small; lookup is linear).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  JsonValue(double d) : type_(Type::Number), num_(d) {}
  JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}
  JsonValue(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  JsonValue(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  /// Parse a complete document (one value, trailing whitespace only).
  /// Throws std::invalid_argument on malformed input; never crashes.
  static JsonValue parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed access; throws std::invalid_argument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  /// Number that must be integral and fit a long (protocol knobs are
  /// int-sized; 1e300 steps must not silently truncate).
  long as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // ------------------------------------------------- object conveniences
  /// Member lookup; nullptr when absent or when this is not an object.
  const JsonValue* find(const std::string& key) const;
  /// Typed member getters: fallback when the key is absent, throws
  /// std::invalid_argument (naming the key) when present with a wrong type.
  bool get_bool(const std::string& key, bool fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string json_escape(const std::string& s);

/// `"key":"escaped"` convenience used by the hand-rolled emitters.
std::string json_quote(const std::string& s);

}  // namespace emwd::util
