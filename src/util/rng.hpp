// Deterministic pseudo-random number generation (xoshiro256**).
//
// Tests and workload generators need reproducible randomness that is
// identical across platforms and standard-library versions; <random>
// distributions do not guarantee that, so we roll the small amount we need.
#pragma once

#include <cstdint>

namespace emwd::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the authors.
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace emwd::util
