#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace emwd::util {

double Stats::min() const {
  if (samples_.empty()) throw std::logic_error("Stats::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  if (samples_.empty()) throw std::logic_error("Stats::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::mean() const {
  if (samples_.empty()) throw std::logic_error("Stats::mean on empty set");
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double x : samples_) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Stats::percentile(double q) const {
  if (samples_.empty()) throw std::logic_error("Stats::percentile on empty set");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double rel_diff(double a, double b, double eps) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace emwd::util
