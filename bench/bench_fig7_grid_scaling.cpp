// Reproduces paper Fig. 7 (a-d): full-socket (18 threads) behaviour at
// increasing cubic grid size (paper: 64..512 step 64).
//
//   (a) performance MLUP/s          (b) auto-tuned intra-tile thread split
//   (c) memory bandwidth GB/s       (d) memory traffic B/LUP
//
// Shape to reproduce: spatial pinned at ~40 MLUP/s (bandwidth-bound) for
// all sizes; 1WD decays with grid size (Eq. 11 is linear in Nx, so its
// per-thread tiles stop fitting and the tuner is stuck at Dw=4); MWD stays
// decoupled across the whole range with ~6x lower code balance (3x-4x
// speedup), and the tuner grows the thread groups as the grid grows
// (components parallelism appearing at 2-3 threads throughout).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace emwd;
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("sizes", "paper-scale sizes, comma separated", "64,128,192,256,320,384,448,512");
  cli.add_flag("threads", "socket threads (paper: 18)", "18");
  cli.add_flag("steps", "replay steps", "8");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  const auto sizes = cli.get_int_list("sizes", {64, 128, 192, 256, 320, 384, 448, 512});
  const int threads = static_cast<int>(cli.get_int("threads", 18));
  const int steps = static_cast<int>(cli.get_int("steps", 8));

  banner("bench_fig7_grid_scaling",
         "Fig. 7: spatial vs 1WD vs MWD at increasing grid size, 18 threads");

  const models::Machine hsw = models::haswell18();
  const models::Machine scaled = scaled_haswell();

  util::Table perf({"size", "spatial MLUP/s", "1WD MLUP/s", "MWD MLUP/s", "MWD/spatial"});
  util::Table split({"size", "MWD group", "along x", "along z", "in comp.", "groups"});
  util::Table bw({"size", "spatial GB/s", "1WD GB/s", "MWD GB/s", "MWD saved %"});
  util::Table traffic({"size", "spatial B/LUP", "1WD B/LUP", "MWD B/LUP"});

  for (long size : sizes) {
    const int n = static_cast<int>(size);
    const int ns = std::max(8, n / kScale);
    const grid::Extents paper_grid{n, n, n};
    const grid::Extents replay_grid{ns, ns, ns};

    const auto sp = models::predict(hsw, threads, models::spatial_bytes_per_lup());

    const tune::Candidate c1 = best_candidate_restricted(threads, 1, paper_grid, hsw);
    const double bpl_1wd =
        measured_mwd_bpl(replay_grid, c1.params, scaled.llc_bytes, steps);
    const auto w1 = models::predict(hsw, threads, bpl_1wd, true);

    const tune::Candidate cm = best_candidate_restricted(threads, 0, paper_grid, hsw);
    const double bpl_mwd =
        measured_mwd_bpl(replay_grid, cm.params, scaled.llc_bytes, steps);
    const auto wm = models::predict(hsw, threads, bpl_mwd, true);

    perf.add_row({std::to_string(n), util::fmt_double(sp.mlups, 4),
                  util::fmt_double(w1.mlups, 4), util::fmt_double(wm.mlups, 4),
                  util::fmt_double(wm.mlups / sp.mlups, 3)});
    split.add_row({std::to_string(n), std::to_string(cm.params.tg_size()),
                   std::to_string(cm.params.tx), std::to_string(cm.params.tz),
                   std::to_string(cm.params.tc), std::to_string(cm.params.num_tgs)});
    const double saved =
        100.0 * (1.0 - wm.mem_bandwidth_bytes_per_s / hsw.bandwidth_bytes_per_s);
    bw.add_row({std::to_string(n),
                util::fmt_double(sp.mem_bandwidth_bytes_per_s / 1e9, 4),
                util::fmt_double(w1.mem_bandwidth_bytes_per_s / 1e9, 4),
                util::fmt_double(wm.mem_bandwidth_bytes_per_s / 1e9, 4),
                util::fmt_double(saved, 3)});
    traffic.add_row({std::to_string(n),
                     util::fmt_double(models::spatial_bytes_per_lup(), 5),
                     util::fmt_double(bpl_1wd, 5), util::fmt_double(bpl_mwd, 5)});
  }

  perf.print(std::cout, "Fig. 7a: performance at increasing grid size");
  split.print(std::cout, "Fig. 7b: auto-tuned intra-tile thread split");
  bw.print(std::cout, "Fig. 7c: memory bandwidth (MWD saved % of 50 GB/s)");
  traffic.print(std::cout, "Fig. 7d: memory traffic per LUP");

  std::printf("paper claims to check: MWD/spatial in 3x-4x, MWD bandwidth saving\n"
              ">= 38%%, components parallelism 2-3 threads at every size.\n");
  return 0;
}
