// Shard-scaling study for the dist/ subsystem.
//
// Aggregate MLUP/s vs. z-shard count for naive and MWD inner engines, on
// one grid with a thread budget split across shards (every shard keeps at
// least one thread, so K > --threads oversubscribes; the threads/shard
// column records what each row actually ran).  On a single-socket host this
// mostly measures the decomposition overhead (scatter/gather once, ghost
// re-compute and halo copies every exchange interval); on a multi-socket
// host the NUMA-local shard placement turns it into a socket-scaling study.
// The halo columns quantify the exchange cost the overlap scheme pays for
// keeping every inner engine bit-exact.
#include "common.hpp"

#include <fstream>

#include "dist/numa.hpp"
#include "dist/sharded_engine.hpp"
#include "em/coefficients.hpp"
#include "grid/fieldset.hpp"

int main(int argc, char** argv) {
  using namespace emwd;
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("nx", "grid extent x", "48");
  cli.add_flag("ny", "grid extent y", "48");
  cli.add_flag("nz", "grid extent z (the sharded dimension)", "96");
  cli.add_flag("steps", "time steps per run", "8");
  cli.add_flag("threads", "total thread budget, split across shards", "2");
  cli.add_flag("shards", "shard counts to sweep", "1,2,4");
  cli.add_flag("interval", "steps between halo exchanges", "1");
  cli.add_flag("numa", "bind shards to NUMA nodes", "true");
  cli.add_flag("csv", "also write the table as CSV to this file", "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text("bench_shard_scaling").c_str());
    return 0;
  }
  const int nx = static_cast<int>(cli.get_int("nx", 48));
  const int ny = static_cast<int>(cli.get_int("ny", 48));
  const int nz = static_cast<int>(cli.get_int("nz", 96));
  const int steps = static_cast<int>(cli.get_int("steps", 8));
  const int threads = static_cast<int>(cli.get_int("threads", 2));
  const int interval = static_cast<int>(cli.get_int("interval", 1));
  const bool numa = cli.get_bool("numa", true);
  const std::vector<long> shard_counts = cli.get_int_list("shards", {1, 2, 4});

  banner("bench_shard_scaling",
         "dist/ subsystem: aggregate MLUP/s vs. z-shard count");
  const dist::NumaTopology topo = dist::NumaTopology::detect();
  std::printf("host: %d NUMA node(s), %d thread budget, grid %dx%dx%d, "
              "exchange interval %d\n\n",
              topo.num_nodes, threads, nx, ny, nz, interval);

  const grid::Layout layout({nx, ny, nz});

  util::Table t({"inner", "shards", "threads/shard", "MLUP/s", "vs K=1",
                 "halo MB/exchg", "halo s (thread)", "redundant LUP %"});
  for (const char* inner : {"naive", "mwd"}) {
    double base_mlups = 0.0;
    for (long k : shard_counts) {
      dist::ShardedParams p;
      p.num_shards = static_cast<int>(k);
      p.exchange_interval = interval;
      p.inner = dist::inner_kind_from_string(inner);
      p.threads_per_shard = std::max(1, threads / std::max(1, static_cast<int>(k)));
      p.numa_bind = numa;

      grid::FieldSet fs(layout);
      em::build_random_stable(fs, /*seed=*/0x5eedu + static_cast<unsigned>(k));
      auto engine = dist::make_sharded_engine(p);
      engine->run(fs, steps);
      const exec::EngineStats& st = engine->stats();

      if (st.shards == 1) base_mlups = st.mlups;
      const std::int64_t useful =
          static_cast<std::int64_t>(layout.interior().cells()) * steps;
      const double redundant_pct =
          useful > 0 ? 100.0 * static_cast<double>(st.lups - useful) /
                           static_cast<double>(useful)
                     : 0.0;
      const double halo_mb_per_exchange =
          st.halo_bytes_moved > 0 && steps > interval
              ? static_cast<double>(st.halo_bytes_moved) /
                    (1024.0 * 1024.0 * static_cast<double>((steps - 1) / interval))
              : 0.0;
      t.add_row({inner, std::to_string(st.shards), std::to_string(p.threads_per_shard),
                 util::fmt_double(st.mlups, 4),
                 base_mlups > 0 ? util::fmt_double(st.mlups / base_mlups, 3) : "-",
                 util::fmt_double(halo_mb_per_exchange, 3),
                 util::fmt_double(st.halo_exchange_seconds, 3),
                 util::fmt_double(redundant_pct, 3)});
    }
  }
  t.print(std::cout, "shard scaling (" + std::to_string(steps) + " steps)");
  const std::string csv_path = cli.get("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << t.to_csv();
    if (!out) {
      std::fprintf(stderr, "FAIL: could not write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}
