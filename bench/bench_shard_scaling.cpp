// Shard-scaling study for the dist/ subsystem.
//
// Aggregate MLUP/s vs. z-shard count for naive and MWD inner engines, on
// one grid with a thread budget split across shards (every shard keeps at
// least one thread, so K > --threads oversubscribes; the threads/shard
// column records what each row actually ran).  Every multi-shard point runs
// twice: with the bulk-synchronous barrier exchange and with the overlapped
// post/wait protocol, so the table quantifies how much of the exchange
// stall the overlap hides (halo wait/hidden/exposed columns; the `isa`
// column records the row-kernel dispatch so a SIMD fallback is visible).
// On a single-socket host this mostly measures the decomposition overhead;
// on a multi-socket host the NUMA-local shard placement turns it into a
// socket-scaling study.
//
// Engines are built from spec strings through the EngineRegistry — the
// sweep axes (shards, interval, overlap twin) compose a
// `sharded(shards=K,...,inner=<spec>)` spec per point; the unified
// --engine flag overrides the default naive/mwd inner pair.
//
// --csv writes the table for .github/check_shard_smoke.py; --json writes a
// machine-readable barrier-vs-overlap record (BENCH_overlap.json in CI).
#include "common.hpp"

#include <fstream>
#include <memory>
#include <stdexcept>

#include "dist/numa.hpp"
#include "em/coefficients.hpp"
#include "grid/fieldset.hpp"
#include "io/snapshot.hpp"
#include "kernels/update_simd.hpp"
#include "util/timer.hpp"
#include "util/trace_cli.hpp"

namespace {

using namespace emwd;

struct RowResult {
  exec::EngineStats stats;   // the best-wall-time repeat
  double seconds = 0.0;      // its wall time
  double halo_wait = 0.0;    // halo-stall columns: the minimum-exposed repeat —
  double halo_hidden = 0.0;  // the floor reflects the protocol's structure,
  double halo_exposed = 0.0; // spikes reflect the host scheduler
  io::SnapshotWriter::Stats ckpt;  // cumulative over repeats (--checkpoint-every)
};

/// Warmup outside the timed region (also triggers the sharded engine's
/// prepare() allocation), then the best of `repeats` timed runs (the
/// tuner's stage-2 methodology).  With ckpt_every > 0 the run checkpoints
/// to `ckpt_path` through the async SnapshotWriter and the `seconds` column
/// becomes wall time around run_hooked — capture stalls included, so
/// diffing a checkpointed run against a plain one measures exactly the
/// overhead the <5% acceptance gate is about (background write time is
/// drained between repeats, outside the timed region).
RowResult run_point(const exec::EngineSpec& spec, const grid::Layout& layout,
                    int threads, int steps, int repeats, unsigned seed,
                    int ckpt_every, const std::string& ckpt_path) {
  grid::FieldSet fs(layout);
  em::build_random_stable(fs, seed);
  exec::BuildContext ctx;
  ctx.grid = layout.interior();
  ctx.threads = threads;  // the --threads budget (inner=auto tunes against it)
  auto engine = exec::EngineRegistry::global().build(spec, ctx);
  engine->run(fs, std::min(steps, 2));  // warmup: fault pages in, warm caches

  std::unique_ptr<io::SnapshotWriter> writer;
  if (ckpt_every > 0) {
    writer = std::make_unique<io::SnapshotWriter>(layout);
    engine->set_step_hook(ckpt_every, [&](int done) {
      io::SnapshotInfo info;
      info.extents = layout.interior();
      info.steps_done = done;
      info.meta = exec::to_string(spec);
      writer->capture(fs, info, ckpt_path);
      return true;
    });
  }

  RowResult best;
  best.seconds = 1e300;
  best.halo_exposed = 1e300;
  for (int r = 0; r < std::max(1, repeats); ++r) {
    fs.clear_fields();
    double wall;
    if (writer) {
      util::Timer timer;
      engine->run_hooked(fs, steps);
      wall = timer.seconds();
      writer->wait_idle();  // drain before the next repeat competes for cores
    } else {
      engine->run(fs, steps);
      wall = engine->stats().seconds;
    }
    const exec::EngineStats& st = engine->stats();
    if (wall < best.seconds) {
      best.stats = st;
      best.seconds = wall;
    }
    if (st.halo_exposed_seconds() < best.halo_exposed) {
      best.halo_wait = st.halo_wait_seconds;
      best.halo_hidden = st.halo_hidden_seconds;
      best.halo_exposed = st.halo_exposed_seconds();
    }
  }
  if (writer) best.ckpt = writer->stats();
  return best;
}

std::string json_escape_free(double v) { return util::fmt_double(v, 9); }

}  // namespace

int main(int argc, char** argv) {
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("nx", "grid extent x", "48");
  cli.add_flag("ny", "grid extent y", "48");
  cli.add_flag("nz", "grid extent z (the sharded dimension)", "96");
  cli.add_flag("steps", "time steps per run", "8");
  cli.add_flag("threads", "total thread budget, split across shards", "2");
  cli.add_flag("shards", "shard counts to sweep", "1,2,4");
  cli.add_flag("interval", "steps between halo exchanges", "1");
  cli.add_flag("repeats", "timed repeats per point (best wins)", "3");
  cli.add_flag("numa", "bind shards to NUMA nodes", "true");
  cli.add_flag("transports", "halo transports to sweep (comma-separated)", "local");
  emwd::bench::add_engine_flag(cli, "");  // inner spec; empty = naive AND mwd
  cli.add_flag("checkpoint-every", "snapshot every N steps (async writer)", "0");
  cli.add_flag("checkpoint-dir", "directory for the snapshot files", "");
  cli.add_flag("csv", "also write the table as CSV to this file", "");
  cli.add_flag("json", "write a barrier-vs-overlap JSON record to this file", "");
  util::add_trace_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text("bench_shard_scaling").c_str());
    return 0;
  }
  util::TraceFromCli trace(cli);  // --trace FILE: exported at exit
  const int nx = static_cast<int>(cli.get_int("nx", 48));
  const int ny = static_cast<int>(cli.get_int("ny", 48));
  const int nz = static_cast<int>(cli.get_int("nz", 96));
  const int steps = static_cast<int>(cli.get_int("steps", 8));
  const int threads = static_cast<int>(cli.get_int("threads", 2));
  const int interval = static_cast<int>(cli.get_int("interval", 1));
  const int repeats = static_cast<int>(cli.get_int("repeats", 3));
  const bool numa = cli.get_bool("numa", true);
  const int ckpt_every = static_cast<int>(cli.get_int("checkpoint-every", 0));
  const std::string ckpt_dir = cli.get("checkpoint-dir", "");
  if (ckpt_every > 0 && ckpt_dir.empty()) {
    std::fprintf(stderr, "--checkpoint-every requires --checkpoint-dir\n");
    return 1;
  }
  const std::vector<long> shard_counts = cli.get_int_list("shards", {1, 2, 4});
  // Halo transports to sweep: twin rows per (inner, K, overlap) point, so
  // the CSV/JSON quantify the transport's cost against in-process "local".
  std::vector<std::string> transports;
  {
    std::string list = cli.get("transports", "local");
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const std::size_t comma = list.find(',', pos);
      const std::string name = list.substr(pos, comma == std::string::npos
                                                    ? std::string::npos
                                                    : comma - pos);
      if (!name.empty()) transports.push_back(name);
      pos = comma == std::string::npos ? comma : comma + 1;
    }
    if (transports.empty()) transports.push_back("local");
  }
  // The sweep's inner engines: the unified --engine spec when given, else
  // the naive/mwd pair the smoke gates compare.
  std::vector<std::string> inners;
  if (cli.get("engine").empty()) {
    inners = {"naive", "mwd"};
  } else {
    inners = {exec::to_string(emwd::bench::engine_spec_from_cli(cli))};
  }

  banner("bench_shard_scaling",
         "dist/ subsystem: aggregate MLUP/s vs. z-shard count, barrier vs. overlap");
  const dist::NumaTopology topo = dist::NumaTopology::detect();
  std::printf("host: %d NUMA node(s), %d thread budget, grid %dx%dx%d, "
              "exchange interval %d, avx2 %s\n\n",
              topo.num_nodes, threads, nx, ny, nz, interval,
              kernels::avx2_supported() ? "available" : "unavailable");

  const grid::Layout layout({nx, ny, nz});
  const std::int64_t useful =
      static_cast<std::int64_t>(layout.interior().cells()) * steps;

  util::Table t({"inner", "shards", "threads/shard", "MLUP/s", "vs K=1",
                 "halo MB/exchg", "halo s (thread)", "redundant LUP %", "overlap",
                 "seconds", "halo wait s", "halo hidden s", "halo exposed s",
                 "transport", "staged MB", "halo stage s", "halo unstage s", "isa"});
  std::string json_rows;
  io::SnapshotWriter::Stats ckpt_totals;
  for (const std::string& inner : inners) {
    double base_mlups = 0.0;
    for (long k : shard_counts) {
      for (bool overlap : {false, true}) {
        if (overlap && k <= 1) continue;  // overlap is a no-op on one shard
        for (const std::string& transport : transports) {
        // Staging only happens in overlap mode; a barrier-mode resweep per
        // transport would duplicate rows whose pulls are identical.  Keep
        // barrier rows for the baseline transport only.
        if (!overlap && transport != transports.front()) continue;
        const int tps = std::max(1, threads / std::max(1, static_cast<int>(k)));
        const exec::EngineSpec inner_spec = exec::parse_engine_spec(inner);
        exec::EngineSpec spec;
        spec.kind = "sharded";
        spec.add("shards", k).add("interval", static_cast<long>(interval));
        if (overlap) spec.add_flag("overlap");
        if (transport != "local") spec.add("transport", transport);
        // Pin the per-shard budget (K > threads oversubscribes on purpose)
        // — except for inner=auto, where the tuner derives it.
        if (inner_spec.kind != "auto") spec.add("tps", static_cast<long>(tps));
        if (!numa) spec.add("numa", std::string("0"));
        spec.add("inner", inner_spec);

        RowResult r;
        try {
          const std::string ckpt_path =
              ckpt_every > 0 ? ckpt_dir + "/bench_" + inner + "_k" +
                                   std::to_string(k) + (overlap ? "_ov" : "") +
                                   "_" + transport + ".ckpt"
                             : std::string();
          r = run_point(spec, layout, threads, steps, repeats,
                        0x5eedu + static_cast<unsigned>(k), ckpt_every, ckpt_path);
        } catch (const std::invalid_argument& e) {
          std::fprintf(stderr, "bad --engine: %s\n", e.what());
          return 2;
        }
        const exec::EngineStats& st = r.stats;

        if (st.shards == 1 && !overlap && transport == transports.front()) {
          base_mlups = st.mlups;
        }
        const double redundant_pct =
            useful > 0 ? 100.0 * static_cast<double>(st.lups - useful) /
                             static_cast<double>(useful)
                       : 0.0;
        const double halo_mb_per_exchange =
            st.halo_bytes_moved > 0 && steps > interval
                ? static_cast<double>(st.halo_bytes_moved) /
                      (1024.0 * 1024.0 * static_cast<double>((steps - 1) / interval))
                : 0.0;
        t.add_row({inner, std::to_string(st.shards), std::to_string(tps),
                   util::fmt_double(st.mlups, 4),
                   base_mlups > 0 ? util::fmt_double(st.mlups / base_mlups, 3) : "-",
                   util::fmt_double(halo_mb_per_exchange, 3),
                   util::fmt_double(st.halo_exchange_seconds, 3),
                   util::fmt_double(redundant_pct, 3), st.halo_overlapped ? "1" : "0",
                   util::fmt_double(r.seconds, 6), util::fmt_double(r.halo_wait, 6),
                   util::fmt_double(r.halo_hidden, 6),
                   util::fmt_double(r.halo_exposed, 6), transport,
                   util::fmt_double(
                       static_cast<double>(st.halo_staged_bytes) / (1024.0 * 1024.0), 3),
                   util::fmt_double(st.halo_stage_seconds, 6),
                   util::fmt_double(st.halo_unstage_seconds, 6), st.kernel_isa});

        ckpt_totals.captured += r.ckpt.captured;
        ckpt_totals.written += r.ckpt.written;
        ckpt_totals.bytes_written += r.ckpt.bytes_written;
        ckpt_totals.capture_seconds += r.ckpt.capture_seconds;
        ckpt_totals.blocked_seconds += r.ckpt.blocked_seconds;
        ckpt_totals.write_seconds += r.ckpt.write_seconds;

        // exposed = wait + copy - hidden, so hidden + exposed = wait + copy
        // (the full halo handling on the shard threads).
        const double halo_total = r.halo_hidden + r.halo_exposed;
        const double hidden_fraction = halo_total > 0.0 ? r.halo_hidden / halo_total : 0.0;
        // Engine-derived fields ride in the canonical EngineStats::to_json
        // object (shards, overlap, mlups, the halo byte/time family, the
        // transport and isa); only the bench's own axes and the
        // min-exposed-repeat halo columns stay hand-rolled.
        if (!json_rows.empty()) json_rows += ",\n";
        json_rows += std::string("    {\"inner\": \"") + inner +
                     "\", \"threads_per_shard\": " + std::to_string(tps) +
                     ", \"wall_seconds\": " + json_escape_free(r.seconds) +
                     ", \"halo_wait_s\": " + json_escape_free(r.halo_wait) +
                     ", \"halo_hidden_s\": " + json_escape_free(r.halo_hidden) +
                     ", \"halo_exposed_s\": " + json_escape_free(r.halo_exposed) +
                     ", \"hidden_fraction\": " + json_escape_free(hidden_fraction) +
                     ", \"transport\": \"" + transport + "\"" +
                     ", \"stats\": " + st.to_json() + '}';
        }
      }
    }
  }
  t.print(std::cout, "shard scaling (" + std::to_string(steps) + " steps, best of " +
                         std::to_string(repeats) + ")");
  if (ckpt_every > 0) {
    std::printf(
        "checkpointing every %d steps: %lld snapshot(s), %.1f MiB written, "
        "engine stalled %.4f s in capture (%.4f s of that waiting for a "
        "buffer), %.4f s background write\n",
        ckpt_every, static_cast<long long>(ckpt_totals.captured),
        static_cast<double>(ckpt_totals.bytes_written) / (1024.0 * 1024.0),
        ckpt_totals.capture_seconds, ckpt_totals.blocked_seconds,
        ckpt_totals.write_seconds);
  }
  const std::string csv_path = cli.get("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << t.to_csv();
    if (!out) {
      std::fprintf(stderr, "FAIL: could not write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
  const std::string json_path = cli.get("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"bench_shard_scaling\",\n"
        << "  \"grid\": {\"nx\": " << nx << ", \"ny\": " << ny << ", \"nz\": " << nz
        << "},\n  \"steps\": " << steps << ",\n  \"threads\": " << threads
        << ",\n  \"exchange_interval\": " << interval << ",\n  \"repeats\": " << repeats
        << ",\n  \"avx2_available\": " << (kernels::avx2_supported() ? "true" : "false")
        << ",\n  \"rows\": [\n" << json_rows << "\n  ]\n}\n";
    if (!out) {
      std::fprintf(stderr, "FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
