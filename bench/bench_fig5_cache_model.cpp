// Reproduces paper Fig. 5 (a-c): code balance and cache block size of the
// 1WD kernel for diamond widths {4, 8, 12, 16} at wavefront block heights
// BZ in {1, 6, 9} — Eq. 11/12 model curves against cache-simulator
// "measurements" of the actual tiled access stream.
//
// Paper shape to reproduce: the measured code balance follows the Eq. 12
// model while the Eq. 11 cache block size stays below the usable cache
// (half the LLC, red line in the paper's plots) and diverges upward beyond
// it; larger BZ inflates the block size so fewer diamond widths fit.
#include "common.hpp"

#include "tiling/wavefront.hpp"

int main(int argc, char** argv) {
  using namespace emwd;
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("n", "scaled cubic grid (paper: 480)");
  cli.add_flag("steps", "replay steps per configuration", "0");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  // Default: paper's 480^3 scaled by kScale -> 60^3.
  const int n = static_cast<int>(cli.get_int("n", 480 / kScale));

  banner("bench_fig5_cache_model",
         "Fig. 5: cache block size requirements at BZ in {1,6,9}, 1WD");

  const models::Machine m = scaled_haswell();
  const double usable_mib =
      models::usable_cache_fraction() * static_cast<double>(m.llc_bytes) / 1048576.0;
  std::printf("grid %d^3 (paper %d^3), simulated LLC %.2f MiB, usable %.2f MiB\n\n", n,
              n * kScale, m.llc_bytes / 1048576.0, usable_mib);

  for (int bz : {1, 6, 9}) {
    util::Table t({"Dw", "BZ", "Ww", "Cs model MiB", "fits usable", "BC model B/LUP",
                   "BC measured B/LUP", "meas/model"});
    for (int dw : {4, 8, 12, 16}) {
      const double cs = models::cache_block_bytes(dw, bz, n) / 1048576.0;
      const bool fits = models::fits_cache(dw, bz, n, m.llc_bytes, 1);
      const double bc_model = models::diamond_bytes_per_lup(dw);

      exec::MwdParams p;
      p.dw = dw;
      p.bz = bz;
      p.num_tgs = 1;
      const int steps = static_cast<int>(cli.get_int("steps", 0));
      const grid::Extents g{n, n, std::max(n / 2, 3 * bz)};
      const double bc_meas =
          measured_mwd_bpl(g, p, m.llc_bytes, steps > 0 ? steps : std::max(8, dw));

      t.add_row({std::to_string(dw), std::to_string(bz),
                 std::to_string(tiling::wavefront_width(dw, bz)),
                 util::fmt_double(cs, 4), fits ? "yes" : "NO",
                 util::fmt_double(bc_model, 5), util::fmt_double(bc_meas, 5),
                 util::fmt_double(bc_meas / bc_model, 3)});
    }
    t.print(std::cout, "Fig. 5, BZ = " + std::to_string(bz));
  }

  std::printf(
      "expected shape (paper): meas/model near 1 while 'fits usable' holds;\n"
      "measured balance rises once Cs exceeds the usable cache share, and\n"
      "BZ=6/9 push even Dw=4 toward or past the limit while BZ=1 leaves room\n"
      "for larger diamonds (the argument for multi-dimensional intra-tile\n"
      "parallelism instead of wavefront-only parallelism).\n");
  return 0;
}
