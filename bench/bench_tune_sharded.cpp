// Two-stage sharded autotuner study: how close does the tuner's plan land
// to the exhaustive-best?
//
// Stage 1 ranks every feasible (num_shards, exchange_interval) pair with
// the analytic redundant-LUP + halo-bytes model (per-shard MWD tuned
// against each shard's real sub-grid); stage 2 times the top-k plans on the
// actual ShardedEngine.  As ground truth, this bench ALSO times every
// stage-1 candidate end to end and reports the gap between the tuner's
// chosen plan and the exhaustive-best wall time — the number that tells you
// whether refine_top_k is deep enough on this machine.  With --csv the full
// per-candidate table is written for archival (CI uploads it as an
// artifact); with --max-gap-pct the bench exits non-zero when the chosen
// plan is too far off, making it usable as a regression gate.
#include "common.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "em/coefficients.hpp"
#include "grid/fieldset.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emwd;
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("nx", "grid extent x", "32");
  cli.add_flag("ny", "grid extent y", "32");
  cli.add_flag("nz", "grid extent z (the sharded dimension)", "96");
  cli.add_flag("threads", "total thread budget, split across shards", "2");
  cli.add_flag("steps", "steps per timed run (tuner and exhaustive)", "4");
  cli.add_flag("topk", "stage-2 refinement depth", "3");
  cli.add_flag("repeats", "timed repetitions per plan (best wins)", "2");
  cli.add_flag("min-shard-planes", "smallest owned z-block worth sharding", "8");
  // The unified --engine flag pins search axes: a `sharded(...)` spec's
  // shards / interval / overlap arguments become fixed_* pins; the bare
  // default searches every axis.
  emwd::bench::add_engine_flag(cli, "sharded");
  cli.add_flag("csv", "write the per-candidate table to this file", "");
  cli.add_flag("max-gap-pct", "exit non-zero when chosen-vs-best gap exceeds this", "");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text("bench_tune_sharded").c_str());
    return 0;
  }

  tune::ShardedTuneConfig cfg;
  cfg.grid = {static_cast<int>(cli.get_int("nx", 32)), static_cast<int>(cli.get_int("ny", 32)),
              static_cast<int>(cli.get_int("nz", 96))};
  cfg.threads = static_cast<int>(cli.get_int("threads", 2));
  cfg.machine = models::host_machine();
  cfg.limits.min_shard_planes = static_cast<int>(cli.get_int("min-shard-planes", 8));
  cfg.timed_refinement = true;
  cfg.refine_top_k = static_cast<int>(cli.get_int("topk", 3));
  cfg.refine_steps = static_cast<int>(cli.get_int("steps", 4));
  cfg.repeats = static_cast<int>(cli.get_int("repeats", 2));

  const exec::EngineSpec pin = engine_spec_from_cli(cli);
  if (pin.kind != "sharded") {
    std::fprintf(stderr, "bad --engine: expected a sharded(...) spec, got %s\n",
                 pin.kind.c_str());
    return 1;
  }
  // Only the searchable axes may be pinned here; anything else (a full plan
  // with tps=/inner=, or a typo like shard=) must fail loudly, not be
  // silently dropped — a full plan runs via driver/bench_shard_scaling.
  try {
    static const char* const pin_keys[] = {"shards", "interval", "overlap", nullptr};
    exec::detail::check_spec_keys(pin, pin_keys);
    cfg.fixed_shards = static_cast<int>(std::max(0L, pin.get_int("shards", 0)));
    cfg.fixed_interval = static_cast<int>(std::max(0L, pin.get_int("interval", 0)));
    if (pin.has("overlap")) cfg.fixed_overlap = pin.get_bool("overlap", false) ? 1 : 0;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr,
                 "bad --engine: %s\n(only shards/interval/overlap pin this "
                 "bench's search; run a full plan spec via driver or "
                 "bench_shard_scaling)\n",
                 e.what());
    return 1;
  }

  banner("bench_tune_sharded",
         "two-stage sharded tuner vs. exhaustive-best (chosen-plan gap)");
  std::printf("grid %dx%dx%d, %d threads, %d-step timed runs, top-%d refinement\n\n",
              cfg.grid.nx, cfg.grid.ny, cfg.grid.nz, cfg.threads, cfg.refine_steps,
              cfg.refine_top_k);

  tune::ShardedTuneResult result = tune::autotune_sharded(cfg);

  // Ground truth: time EVERY stage-1 candidate the same way stage 2 does.
  grid::Layout layout(cfg.grid);
  grid::FieldSet fs(layout);
  em::build_random_stable(fs, /*seed=*/0x7u);
  const std::int64_t useful = static_cast<std::int64_t>(cfg.grid.cells());
  double best_seconds = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < result.ranked.size(); ++i) {
    tune::ShardedCandidate& c = result.ranked[i];
    if (c.measured_seconds <= 0.0) {
      // Same measurement methodology as the tuner's stage 2, so the gap
      // compares like with like.
      c.measured_seconds = tune::time_sharded_plan(c.plan, fs, cfg);
      c.measured_mlups = util::mlups(useful, cfg.refine_steps, c.measured_seconds);
    }
    if (c.measured_seconds < best_seconds) {
      best_seconds = c.measured_seconds;
      best_idx = i;
    }
  }

  util::Table t = result.to_table();
  t.print(std::cout, "sharded tuning space (" + std::to_string(cfg.refine_steps) +
                         "-step timed runs, all candidates measured)");

  const tune::ShardedCandidate& chosen = result.best;
  const tune::ShardedCandidate& exhaustive = result.ranked[best_idx];
  const double gap_pct =
      100.0 * (chosen.measured_seconds - best_seconds) / best_seconds;
  // Spec strings, not describe(): either line pastes back into --engine.
  std::printf("\nchosen   : %s  %.5f s  (%.4g MLUP/s)\n",
              exec::to_string(chosen.plan.to_spec()).c_str(), chosen.measured_seconds,
              chosen.measured_mlups);
  std::printf("exhaustive-best: %s  %.5f s  (%.4g MLUP/s)\n",
              exec::to_string(exhaustive.plan.to_spec()).c_str(), best_seconds,
              exhaustive.measured_mlups);
  std::printf("chosen-vs-best gap: %.2f %%\n", gap_pct);

  const std::string csv_path = cli.get("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << result.to_csv();
    if (!out) {
      std::fprintf(stderr, "FAIL: could not write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }

  const std::string max_gap = cli.get("max-gap-pct", "");
  if (!max_gap.empty() && gap_pct > cli.get_double("max-gap-pct", 1e30)) {
    std::fprintf(stderr, "FAIL: gap %.2f %% exceeds --max-gap-pct=%s\n", gap_pct,
                 max_gap.c_str());
    return 2;
  }
  return 0;
}
