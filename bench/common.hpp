// Shared helpers for the figure-reproduction benches.
//
// Scaling scheme (see DESIGN.md Sec. 6): the paper runs up to 512^3 cells
// (86 GB of state) against a 45 MiB LLC.  Eq. 11 is linear in Nx, so
// shrinking the grid AND the simulated LLC by the same factor preserves
// every fits/overflows relationship the experiments probe.  The benches run
// at 1/SCALE linear size with the LLC scaled identically, and evaluate the
// bottleneck performance model with the paper's bandwidth/core parameters.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cachesim/replay.hpp"
#include "exec/engine.hpp"
#include "exec/engine_registry.hpp"
#include "exec/engine_spec.hpp"
#include "grid/layout.hpp"
#include "models/cache_model.hpp"
#include "models/code_balance.hpp"
#include "models/machine.hpp"
#include "models/perf_model.hpp"
#include "tune/autotuner.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/engine_cli.hpp"

namespace emwd::bench {

// The unified --engine flag helpers live in util/engine_cli.hpp (examples
// use them without including bench/); re-exported here so the figure
// benches keep addressing them as emwd::bench::.
using util::add_engine_flag;
using util::consume_engine_flag;
using util::engine_spec_from_cli;

/// Linear down-scaling factor relative to the paper's setup.
inline constexpr int kScale = 8;

/// The paper's machine with the LLC shrunk by kScale (grids are too).
inline models::Machine scaled_haswell() {
  models::Machine m = models::haswell18();
  m.llc_bytes = m.llc_bytes / kScale;
  m.name = "haswell18/" + std::to_string(kScale);
  return m;
}

/// Replay an MWD configuration at scaled size; returns measured bytes/LUP.
inline double measured_mwd_bpl(const grid::Extents& scaled_grid,
                               const exec::MwdParams& params, std::uint64_t llc_bytes,
                               int steps = 8) {
  grid::Layout L(scaled_grid);
  cachesim::Hierarchy h = cachesim::Hierarchy::llc_only(llc_bytes);
  return cachesim::replay_mwd(L, steps, params, h).bytes_per_lup();
}

inline double measured_spatial_bpl(const grid::Extents& scaled_grid, int block_y,
                                   std::uint64_t llc_bytes, int steps = 4) {
  grid::Layout L(scaled_grid);
  cachesim::Hierarchy h = cachesim::Hierarchy::llc_only(llc_bytes);
  return cachesim::replay_spatial(L, steps, block_y, h).bytes_per_lup();
}

inline double measured_naive_bpl(const grid::Extents& scaled_grid,
                                 std::uint64_t llc_bytes, int steps = 4) {
  grid::Layout L(scaled_grid);
  cachesim::Hierarchy h = cachesim::Hierarchy::llc_only(llc_bytes);
  return cachesim::replay_naive(L, steps, h).bytes_per_lup();
}

/// Best MWD candidate under a thread-group-size restriction (tg_size == g),
/// or unrestricted when g == 0.  Stage-1 (model) tuning only.
inline tune::Candidate best_candidate_restricted(int threads, int tg_size,
                                                 const grid::Extents& grid,
                                                 const models::Machine& m) {
  const auto cands = tune::enumerate_candidates(threads, grid);
  tune::Candidate best;
  bool first = true;
  for (const auto& p : cands) {
    if (tg_size > 0 && p.tg_size() != tg_size) continue;
    const tune::Candidate c = tune::score_candidate(p, grid, m);
    if (first || tune::candidate_better(c, best)) {
      best = c;
      first = false;
    }
  }
  if (first) {
    // No candidate with that exact group size; fall back to 1WD.
    exec::MwdParams p;
    p.num_tgs = threads;
    best = tune::score_candidate(p, grid, m);
  }
  return best;
}

/// Print a standard bench banner.
inline void banner(const std::string& name, const std::string& what) {
  std::printf("=============================================================\n");
  std::printf("%s\n  reproduces: %s\n", name.c_str(), what.c_str());
  std::printf("  scale: 1/%d linear (grid and simulated LLC shrunk together)\n", kScale);
  std::printf("=============================================================\n\n");
}

}  // namespace emwd::bench
