// Microbenchmarks (google-benchmark): the innermost kernel, tiling
// machinery and cache-simulator throughput.  These are the numbers that
// bound everything else: the row kernel's in-cache rate is the Pcore of the
// bottleneck model.
//
// The unified --engine flag (consumed before google-benchmark sees argv)
// adds a BM_EngineSpec benchmark stepping whatever spec string it names,
// so any registry engine can be timed in place:
//
//   ./bench_micro --engine="sharded(shards=2,inner=mwd(dw=4))" \
//       --benchmark_filter=BM_EngineSpec
#include <benchmark/benchmark.h>

#include "cachesim/cache.hpp"
#include "common.hpp"
#include "em/coefficients.hpp"
#include "exec/engine.hpp"
#include "fault/inject.hpp"
#include "grid/fieldset.hpp"
#include "kernels/reference.hpp"
#include "kernels/update.hpp"
#include "kernels/update_simd.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "tiling/dag.hpp"
#include "tiling/diamond.hpp"
#include "util/barrier.hpp"

namespace {

using namespace emwd;

void BM_UpdateRow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> x(2 * n, 1.0), t(2 * n, 0.5), c(2 * n, 0.25), src(2 * n, 0.1);
  std::vector<double> a(2 * 3 * n, 0.3), b(2 * 3 * n, 0.7);
  kernels::RowArgs args;
  args.x = x.data();
  args.t = t.data();
  args.c = c.data();
  args.src = src.data();
  args.a = a.data() + 2 * n;
  args.b = b.data() + 2 * n;
  args.shift = -n;
  args.ds = 1.0;
  args.n = n;
  for (auto _ : state) {
    kernels::update_row(args);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["flops/cell"] = 22;
}
BENCHMARK(BM_UpdateRow)->Arg(64)->Arg(256)->Arg(1024);

// The paper's Sec. VI SIMD investigation: AVX2 vs scalar row kernel.
void BM_UpdateRowAvx2(benchmark::State& state) {
  if (!kernels::avx2_supported()) {
    state.SkipWithError("AVX2 not available");
    return;
  }
  const int n = static_cast<int>(state.range(0));
  std::vector<double> x(2 * n, 1.0), t(2 * n, 0.5), c(2 * n, 0.25), src(2 * n, 0.1);
  std::vector<double> a(2 * 3 * n, 0.3), b(2 * 3 * n, 0.7);
  kernels::RowArgs args;
  args.x = x.data();
  args.t = t.data();
  args.c = c.data();
  args.src = src.data();
  args.a = a.data() + 2 * n;
  args.b = b.data() + 2 * n;
  args.shift = -n;
  args.ds = 1.0;
  args.n = n;
  for (auto _ : state) {
    kernels::update_row_avx2(args);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UpdateRowAvx2)->Arg(64)->Arg(256)->Arg(1024);

void BM_ReferenceStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  grid::Layout L({n, n, n});
  grid::FieldSet fs(L);
  em::build_random_stable(fs, 1);
  for (auto _ : state) {
    kernels::reference_step(fs, 1);
  }
  state.SetItemsProcessed(state.iterations() * L.interior().cells());
  state.counters["MLUPs_basis"] = 1;
}
BENCHMARK(BM_ReferenceStep)->Arg(16)->Arg(32);

void BM_MwdEngineStep(benchmark::State& state) {
  const int n = 32;
  grid::Layout L({n, n, n});
  grid::FieldSet fs(L);
  em::build_random_stable(fs, 1);
  exec::MwdParams p;
  p.dw = static_cast<int>(state.range(0));
  p.bz = 2;
  auto engine = exec::make_mwd_engine(p);
  for (auto _ : state) {
    engine->run(fs, 1);
  }
  state.SetItemsProcessed(state.iterations() * L.interior().cells());
}
BENCHMARK(BM_MwdEngineStep)->Arg(2)->Arg(4)->Arg(8);

void BM_SpinBarrierSolo(benchmark::State& state) {
  util::SpinBarrier b(1);
  for (auto _ : state) b.arrive_and_wait();
}
BENCHMARK(BM_SpinBarrierSolo);

// The disarmed fault-point check: one relaxed load and an untaken branch.
// This is what every injection point on a hot path (engine.step, socket
// loops) costs when no chaos run is active — it must stay at ~ns scale or
// the points cannot live in production code.
void BM_FaultCheckDisabled(benchmark::State& state) {
  fault::disarm();
  for (auto _ : state) {
    if (fault::enabled()) fault::should_fire("bench.point");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_FaultCheckDisabled);

// The armed-but-miss path for contrast: registry mutex + trigger roll.
void BM_FaultCheckArmedMiss(benchmark::State& state) {
  fault::configure("other.point=once");  // arms the registry, not this point
  for (auto _ : state) {
    if (fault::enabled()) {
      benchmark::DoNotOptimize(fault::should_fire("bench.point"));
    }
  }
  fault::disarm();
}
BENCHMARK(BM_FaultCheckArmedMiss);

// The disarmed OBS_SPAN: the same disarm pattern as the fault points — one
// relaxed load and an untaken branch at scope entry, a dead bool test at
// scope exit.  The spans sit on the engine/halo/scheduler hot paths, so
// this is the always-on observability tax; the obs smoke gate holds it to
// single-digit nanoseconds (see .github/check_obs_smoke.py --max-span-ns).
void BM_ObsSpanDisabled(benchmark::State& state) {
  if (obs::tracing_enabled()) obs::stop_tracing();
  for (auto _ : state) {
    OBS_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanDisabled);

// The armed span for contrast: two clock reads plus a ring-slot write.
void BM_ObsSpanArmed(benchmark::State& state) {
  obs::TraceConfig cfg;
  cfg.ring_capacity = 1 << 12;  // small on purpose; overflow drops are fine
  obs::start_tracing(cfg);
  for (auto _ : state) {
    OBS_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
  obs::stop_tracing();
}
BENCHMARK(BM_ObsSpanArmed);

// One registry counter increment: a relaxed fetch_add on a metric resolved
// once outside the loop (the idiom for hot-path producers).
void BM_ObsCounterInc(benchmark::State& state) {
  obs::Registry reg;  // instance registry: the bench must not pollute global()
  obs::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsCounterInc);

void BM_DiamondSlices(benchmark::State& state) {
  tiling::DiamondTiling dt(static_cast<int>(state.range(0)), 128, 32);
  const auto& tiles = dt.tiles();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt.slices(tiles[i % tiles.size()]));
    ++i;
  }
}
BENCHMARK(BM_DiamondSlices)->Arg(4)->Arg(16);

void BM_TileQueueDrain(benchmark::State& state) {
  tiling::DiamondTiling dt(4, 64, 16);
  for (auto _ : state) {
    state.PauseTiming();
    tiling::TileDag dag(dt);
    tiling::TileQueue q(dag);
    state.ResumeTiming();
    while (auto t = q.pop()) q.complete(*t);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dt.tiles().size()));
}
BENCHMARK(BM_TileQueueDrain);

void BM_CacheAccess(benchmark::State& state) {
  cachesim::CacheConfig cfg;
  cfg.size_bytes = 1u << 20;
  cachesim::Cache cache(cfg);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false));
    addr += 64;
    if (addr > (8u << 20)) addr = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

/// One full step of the engine named by --engine, built via the registry.
void BM_EngineSpec(benchmark::State& state, const std::string& spec_text) {
  const int n = 32;
  grid::Layout L({n, n, n});
  grid::FieldSet fs(L);
  em::build_random_stable(fs, 1);
  exec::BuildContext ctx;
  ctx.grid = L.interior();
  ctx.threads = 2;
  std::unique_ptr<exec::Engine> engine;
  try {
    engine = exec::EngineRegistry::global().build(exec::parse_engine_spec(spec_text), ctx);
  } catch (const std::invalid_argument& e) {
    state.SkipWithError(e.what());
    return;
  }
  for (auto _ : state) {
    engine->run(fs, 1);
  }
  state.SetItemsProcessed(state.iterations() * L.interior().cells());
  state.SetLabel(engine->stats().kernel_isa);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec =
      emwd::bench::consume_engine_flag(argc, argv, "mwd(dw=4,bz=2)");
  benchmark::RegisterBenchmark(("BM_EngineSpec/" + spec).c_str(),
                               [spec](benchmark::State& s) { BM_EngineSpec(s, spec); });
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
