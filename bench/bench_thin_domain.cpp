#include <algorithm>
// Thin-domain study — the paper's Sec. VI outlook, quantified.
//
// "In many applications ... one dimension is significantly smaller than the
// other two, i.e., the domain is 'thin'.  Mapping the thin dimension to the
// leading array dimension helps ... Eq. 11 shows that the cache block size
// is proportional to the leading dimension size, so we can use larger
// blocks in time with more data reuse. ... very short leading dimensions
// (less than about 50 cells) are inefficient because of bad pipeline
// utilization [then] the thin domain should be mapped to the middle or
// outer dimensions."
//
// This bench takes one thin box and evaluates the three axis mappings
// (thin->x, thin->y, thin->z): Eq. 11 cache block size, the largest fitting
// diamond, cache-sim traffic, modeled socket performance, and the real
// single-host MLUP/s that exposes the short-inner-loop penalty.
#include "common.hpp"

#include "em/coefficients.hpp"
#include "grid/fieldset.hpp"

int main(int argc, char** argv) {
  using namespace emwd;
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("thin", "thin dimension extent (paper: < 50 is too thin for x)", "12");
  cli.add_flag("wide", "wide dimension extent", "64");
  cli.add_flag("steps", "time steps", "6");
  cli.add_flag("threads", "threads for the real run", "2");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  const int thin = static_cast<int>(cli.get_int("thin", 12));
  const int wide = static_cast<int>(cli.get_int("wide", 64));
  const int steps = static_cast<int>(cli.get_int("steps", 6));
  const int threads = static_cast<int>(cli.get_int("threads", 2));

  banner("bench_thin_domain", "Sec. VI outlook: thin domains and axis mapping");

  const models::Machine m = scaled_haswell();
  struct Mapping {
    const char* name;
    grid::Extents e;
  };
  const Mapping mappings[] = {
      {"thin->x (leading)", {thin, wide, wide}},
      {"thin->y (diamond)", {wide, thin, wide}},
      {"thin->z (wavefront)", {wide, wide, thin}},
  };

  util::Table t({"mapping", "grid", "max Dw (Eq.11 fit)", "Cs MiB @maxDw",
                 "BC cache-sim", "model MLUP/s @18t", "real MLUP/s"});
  for (const Mapping& map : mappings) {
    const int max_dw = std::min(
        {models::max_dw_fitting(2, map.e.nx, m.llc_bytes, 1), map.e.ny, 32});
    const int dw = std::max(1, max_dw);
    exec::MwdParams p;
    p.dw = dw;
    p.bz = 2;
    const double cs = models::cache_block_bytes(dw, 2, map.e.nx) / 1048576.0;
    const double bc = measured_mwd_bpl(map.e, p, m.llc_bytes, steps);
    const auto pred = models::predict(models::haswell18(), 18, bc, true);

    grid::Layout L(map.e);
    grid::FieldSet fs(L);
    em::build_random_stable(fs, 13);
    exec::MwdParams pr = p;
    pr.num_tgs = threads;
    auto eng = exec::make_mwd_engine(pr);
    eng->run(fs, steps);

    t.add_row({map.name,
               std::to_string(map.e.nx) + "x" + std::to_string(map.e.ny) + "x" +
                   std::to_string(map.e.nz),
               std::to_string(max_dw), util::fmt_double(cs, 4), util::fmt_double(bc, 5),
               util::fmt_double(pred.mlups, 4), util::fmt_double(eng->stats().mlups, 4)});
  }
  t.print(std::cout, "thin-domain axis mapping");

  std::printf(
      "expected shape (paper Sec. VI): thin->x shrinks Eq. 11's Cs (linear in\n"
      "Nx) so far larger diamonds fit and modeled traffic drops; but the real\n"
      "MLUP/s column shows the short-inner-loop penalty below ~50 cells that\n"
      "makes the paper recommend mapping thin dimensions to y or z instead\n"
      "when they are very short.\n");
  return 0;
}
