// Ablation studies for the design choices DESIGN.md calls out:
//
//  A. tile scheduling — the paper's dynamic FIFO queue (Sec. II-A) vs a
//     static wavefront-synchronous assignment (global barrier per wave);
//  B. intra-tile parallelization dimension — splitting the same thread
//     group along x vs z vs field components vs mixed (the paper's
//     multi-dimensional contribution is that the *choice* matters);
//  C. temporal blocking depth — diamond width sweep at fixed resources,
//     showing the Eq. 12 traffic curve against the cache-fit limit.
//
// Wall-clock numbers are real executions on this host (oversubscribed if
// threads > cores); traffic numbers come from the cache simulator.
#include "common.hpp"

#include "em/coefficients.hpp"
#include "grid/fieldset.hpp"

int main(int argc, char** argv) {
  using namespace emwd;
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("n", "cubic grid size", "40");
  cli.add_flag("steps", "time steps per measurement", "4");
  cli.add_flag("threads", "worker threads", "4");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  const int n = static_cast<int>(cli.get_int("n", 40));
  const int steps = static_cast<int>(cli.get_int("steps", 4));
  const int threads = static_cast<int>(cli.get_int("threads", 4));

  banner("bench_ablation", "design-choice ablations (scheduler, split dims, Dw)");

  grid::Layout L({n, n, n});
  grid::FieldSet fs(L);
  em::build_random_stable(fs, 9);

  auto time_mwd = [&](exec::MwdParams p) {
    auto eng = exec::make_mwd_engine(p);
    fs.clear_fields();
    eng->run(fs, steps);  // warm-up + data touch
    fs.clear_fields();
    eng->run(fs, steps);
    return eng->stats();
  };

  // --- A: FIFO queue vs static wavefront schedule -------------------------
  {
    util::Table t({"schedule", "params", "MLUP/s", "tiles", "TG barriers",
                   "queue wait s", "barrier wait s"});
    for (auto sched : {exec::TileSchedule::FifoQueue, exec::TileSchedule::StaticWave}) {
      exec::MwdParams p;
      p.dw = 4;
      p.bz = 2;
      p.num_tgs = threads;  // 1WD-style: scheduling pressure is highest
      p.schedule = sched;
      const auto st = time_mwd(p);
      t.add_row({sched == exec::TileSchedule::FifoQueue ? "fifo" : "static-wave",
                 p.describe(), util::fmt_double(st.mlups, 4),
                 std::to_string(st.tiles_executed),
                 std::to_string(st.barrier_episodes),
                 util::fmt_double(st.queue_wait_seconds, 3),
                 util::fmt_double(st.barrier_wait_seconds, 3)});
    }
    t.print(std::cout, "A: dynamic FIFO vs static wavefront scheduling");
  }

  // --- D: private-L2 + shared-LLC two-level replay (FED justification) ----
  {
    util::Table t({"private KiB/group", "L2->LLC B/LUP", "DRAM B/LUP"});
    exec::MwdParams p;
    p.dw = 4;
    p.bz = 2;
    p.num_tgs = std::max(2, threads);
    for (std::uint64_t priv_kib : {64u, 256u, 1024u}) {
      const auto r = cachesim::replay_mwd_private(grid::Layout({n, n, n}), steps, p,
                                                  priv_kib << 10,
                                                  scaled_haswell().llc_bytes);
      t.add_row({std::to_string(priv_kib), util::fmt_double(r.llc_bytes_per_lup(), 5),
                 util::fmt_double(r.dram_bytes_per_lup(), 5)});
    }
    t.print(std::cout,
            "D: private caches absorb in-tile reuse (two-level replay)");
  }

  // --- E: diamond+wavefront vs wavefront-only temporal blocking -----------
  {
    util::Table t({"engine", "name", "MLUP/s"});
    exec::MwdParams p;
    p.dw = 4;
    p.bz = 2;
    p.tc = std::min(threads, 3);
    p.tx = threads / p.tc;
    if (p.tx < 1) p.tx = 1;
    while (p.tx * p.tc > threads) --p.tx;
    if (p.tx * p.tc != threads) {
      p = exec::MwdParams{};
      p.dw = 4;
      p.bz = 2;
      p.num_tgs = threads;
    }
    const auto mwd_st = time_mwd(p);
    t.add_row({"diamond+wavefront", p.describe(), util::fmt_double(mwd_st.mlups, 4)});

    exec::WavefrontParams wp;
    wp.bz = 2;
    wp.tc = (threads == 2 || threads == 3 || threads == 6) ? threads : 1;
    wp.tx = threads / wp.tc;
    auto wf = exec::make_wavefront_engine(wp, {n, n, n}, /*max_steps_per_block=*/4);
    fs.clear_fields();
    wf->run(fs, steps);
    t.add_row({"wavefront-only (ref. [21])", wf->name(),
               util::fmt_double(wf->stats().mlups, 4)});
    t.print(std::cout, "E: diamond tiling vs plain multicore wavefront");
  }

  // --- B: intra-tile split dimension at fixed TG size ---------------------
  {
    util::Table t({"split", "params", "MLUP/s"});
    struct Shape {
      const char* name;
      int tx, tz, tc, bz;
    };
    const int tg = threads;  // one group of `threads`
    std::vector<Shape> shapes;
    shapes.push_back({"along x", tg, 1, 1, 2});
    shapes.push_back({"along z", 1, tg, 1, std::max(2, tg)});
    if (tg == 2 || tg == 3 || tg == 6) shapes.push_back({"components", 1, 1, tg, 2});
    if (tg % 2 == 0 && tg / 2 <= 6 && (tg / 2 == 1 || tg / 2 == 2 || tg / 2 == 3 || tg / 2 == 6)) {
      shapes.push_back({"x * components", 2, 1, tg / 2, 2});
    }
    for (const Shape& s : shapes) {
      exec::MwdParams p;
      p.dw = 4;
      p.bz = s.bz;
      p.tx = s.tx;
      p.tz = s.tz;
      p.tc = s.tc;
      p.num_tgs = 1;
      const auto st = time_mwd(p);
      t.add_row({s.name, p.describe(), util::fmt_double(st.mlups, 4)});
    }
    t.print(std::cout, "B: intra-tile parallelization dimension (1 TG)");
  }

  // --- C: diamond width sweep: model + measured traffic + real time -------
  {
    util::Table t({"Dw", "Cs MiB (Eq.11)", "BC model (Eq.12)", "BC cache-sim",
                   "real MLUP/s"});
    const models::Machine cache_machine = scaled_haswell();
    for (int dw : {1, 2, 4, 8, 16}) {
      exec::MwdParams p;
      p.dw = dw;
      p.bz = 2;
      const double cs = models::cache_block_bytes(dw, 2, n) / 1048576.0;
      const double bc_meas =
          measured_mwd_bpl({n, n, n}, p, cache_machine.llc_bytes, steps);
      const auto st = time_mwd(p);
      t.add_row({std::to_string(dw), util::fmt_double(cs, 4),
                 util::fmt_double(models::diamond_bytes_per_lup(dw), 5),
                 util::fmt_double(bc_meas, 5), util::fmt_double(st.mlups, 4)});
    }
    t.print(std::cout, "C: temporal blocking depth (scaled-haswell LLC)");
  }
  return 0;
}
