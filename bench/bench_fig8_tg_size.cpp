// Reproduces paper Fig. 8 (a-d): impact of the thread-group size (cache
// block sharing degree) at a full 18-thread socket over increasing grid
// size — the paper's 1WD / 2WD / 3WD / 6WD / 9WD / 18WD comparison.
//
//   (a) performance MLUP/s        (b) tuned diamond width
//   (c) memory bandwidth GB/s     (d) memory traffic B/LUP
//
// Shape to reproduce: 6WD/9WD/18WD decouple from the bandwidth bottleneck
// at large grids and perform alike; small groups (1WD/2WD) degrade as
// grids grow; 18WD sustains Dw >= 16 everywhere and saves > 38 % of the
// memory bandwidth at all sizes.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace emwd;
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("sizes", "paper-scale sizes, comma separated", "64,128,192,256,320,384,448,512");
  cli.add_flag("threads", "socket threads (paper: 18)", "18");
  cli.add_flag("steps", "replay steps", "8");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  const auto sizes = cli.get_int_list("sizes", {64, 128, 192, 256, 320, 384, 448, 512});
  const int threads = static_cast<int>(cli.get_int("threads", 18));
  const int steps = static_cast<int>(cli.get_int("steps", 8));

  banner("bench_fig8_tg_size",
         "Fig. 8: thread-group size (cache block sharing) impact, 18 threads");

  const models::Machine hsw = models::haswell18();
  const models::Machine scaled = scaled_haswell();

  std::vector<int> tg_sizes;
  for (int g : {1, 2, 3, 6, 9, 18}) {
    if (threads % g == 0) tg_sizes.push_back(g);
  }

  auto header = [&](const char* first) {
    std::vector<std::string> h{first};
    for (int g : tg_sizes) h.push_back(std::to_string(g) + "WD");
    return h;
  };
  util::Table perf(header("size"));
  util::Table dwidth(header("size"));
  util::Table bw(header("size"));
  util::Table traffic(header("size"));

  for (long size : sizes) {
    const int n = static_cast<int>(size);
    const int ns = std::max(8, n / kScale);
    const grid::Extents paper_grid{n, n, n};
    const grid::Extents replay_grid{ns, ns, ns};

    std::vector<std::string> r_perf{std::to_string(n)}, r_dw{std::to_string(n)},
        r_bw{std::to_string(n)}, r_tr{std::to_string(n)};
    for (int g : tg_sizes) {
      const tune::Candidate c = best_candidate_restricted(threads, g, paper_grid, hsw);
      const double bpl = measured_mwd_bpl(replay_grid, c.params, scaled.llc_bytes, steps);
      const auto w = models::predict(hsw, threads, bpl, true);
      r_perf.push_back(util::fmt_double(w.mlups, 4));
      r_dw.push_back(std::to_string(c.params.dw));
      r_bw.push_back(util::fmt_double(w.mem_bandwidth_bytes_per_s / 1e9, 4));
      r_tr.push_back(util::fmt_double(bpl, 5));
    }
    perf.add_row(r_perf);
    dwidth.add_row(r_dw);
    bw.add_row(r_bw);
    traffic.add_row(r_tr);
  }

  perf.print(std::cout, "Fig. 8a: performance by thread-group size");
  dwidth.print(std::cout, "Fig. 8b: tuned diamond width");
  bw.print(std::cout, "Fig. 8c: memory bandwidth");
  traffic.print(std::cout, "Fig. 8d: memory traffic per LUP");

  std::printf("paper claims to check: 6/9/18WD similar and decoupled at large\n"
              "grids; 18WD holds Dw >= 16 at all sizes and saves > 38%% of the\n"
              "50 GB/s; 1WD traffic grows with grid size.\n");
  return 0;
}
