// Reproduces paper Fig. 6 (a-d): thread scaling of the THIIM kernel at a
// fixed grid (paper: 384^3 on the 18-core Haswell), comparing the spatially
// blocked code, 1WD (one cache block per thread) and MWD (auto-tuned cache
// block sharing).
//
//   (a) performance MLUP/s      (b) memory bandwidth GB/s
//   (c) memory traffic B/LUP    (d) auto-tuned diamond width
//
// Shape to reproduce: spatial saturates at ~40 MLUP/s by 6 threads; 1WD is
// better at small counts but degrades past ~10-12 threads as per-thread
// tiles outgrow the cache; MWD keeps scaling to the full socket (~75 %
// efficiency, 3x-4x over spatial) while drawing far less bandwidth.
//
// Bytes/LUP comes from cache-simulator replay at 1/kScale size; MLUP/s from
// the validated bottleneck model on the paper's machine parameters.  Real
// wall-clock numbers on this host are appended with --real.
#include "common.hpp"

#include "em/coefficients.hpp"
#include "grid/fieldset.hpp"

int main(int argc, char** argv) {
  using namespace emwd;
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("n", "scaled grid size (paper: 384)");
  cli.add_flag("steps", "replay steps", "8");
  cli.add_flag("real", "also run real wall-clock measurements on this host", "0");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  const int n = static_cast<int>(cli.get_int("n", 384 / kScale));
  const int steps = static_cast<int>(cli.get_int("steps", 8));

  banner("bench_fig6_thread_scaling",
         "Fig. 6: spatial vs 1WD vs MWD at 1..18 threads, grid 384^3");

  const models::Machine hsw = models::haswell18();  // paper-size Eq. 11 inputs
  const models::Machine scaled = scaled_haswell();  // replay cache
  const grid::Extents paper_grid{n * kScale, n * kScale, n * kScale};
  const grid::Extents replay_grid{n, n, n};

  util::Table perf({"threads", "spatial MLUP/s", "1WD MLUP/s", "MWD MLUP/s"});
  util::Table bw({"threads", "spatial GB/s", "1WD GB/s", "MWD GB/s"});
  util::Table traffic({"threads", "spatial B/LUP", "1WD B/LUP", "MWD B/LUP"});
  util::Table dwidth({"threads", "1WD Dw", "MWD Dw", "MWD TG (x*z*c)", "MWD groups"});

  const double spatial_bpl = models::spatial_bytes_per_lup();

  for (int t = 1; t <= hsw.cores; ++t) {
    // --- spatial: pure bandwidth bottleneck model (validated in Sec. III-B)
    const auto sp = models::predict(hsw, t, spatial_bpl, /*tiled=*/false);

    // --- 1WD: best dw with one cache block per thread
    const tune::Candidate c1 =
        best_candidate_restricted(t, /*tg_size=*/1, paper_grid, hsw);
    exec::MwdParams p1 = c1.params;
    const double bpl_1wd = measured_mwd_bpl(replay_grid, p1, scaled.llc_bytes, steps);
    const auto w1 = models::predict(hsw, t, bpl_1wd, /*tiled=*/true);

    // --- MWD: full auto-tune (any group size)
    const tune::Candidate cm = best_candidate_restricted(t, 0, paper_grid, hsw);
    exec::MwdParams pm = cm.params;
    const double bpl_mwd = measured_mwd_bpl(replay_grid, pm, scaled.llc_bytes, steps);
    const auto wm = models::predict(hsw, t, bpl_mwd, /*tiled=*/true);

    perf.add_row({std::to_string(t), util::fmt_double(sp.mlups, 4),
                  util::fmt_double(w1.mlups, 4), util::fmt_double(wm.mlups, 4)});
    bw.add_row({std::to_string(t),
                util::fmt_double(sp.mem_bandwidth_bytes_per_s / 1e9, 4),
                util::fmt_double(w1.mem_bandwidth_bytes_per_s / 1e9, 4),
                util::fmt_double(wm.mem_bandwidth_bytes_per_s / 1e9, 4)});
    traffic.add_row({std::to_string(t), util::fmt_double(spatial_bpl, 5),
                     util::fmt_double(bpl_1wd, 5), util::fmt_double(bpl_mwd, 5)});
    dwidth.add_row({std::to_string(t), std::to_string(p1.dw), std::to_string(pm.dw),
                    std::to_string(pm.tx) + "x" + std::to_string(pm.tz) + "x" +
                        std::to_string(pm.tc),
                    std::to_string(pm.num_tgs)});
  }

  perf.print(std::cout, "Fig. 6a: performance (bottleneck model, haswell18)");
  bw.print(std::cout, "Fig. 6b: memory bandwidth");
  traffic.print(std::cout, "Fig. 6c: memory traffic per LUP (cache-sim measured)");
  dwidth.print(std::cout, "Fig. 6d: auto-tuned diamond width / TG shape");

  if (cli.get_bool("real", false)) {
    std::printf("\nreal wall-clock on this host (oversubscribed threads share cores):\n");
    grid::Layout L(replay_grid);
    grid::FieldSet fs(L);
    em::build_random_stable(fs, 3);
    for (int t : {1, 2, 4}) {
      auto sp_eng = exec::make_spatial_engine(t);
      fs.clear_fields();
      sp_eng->run(fs, 2);
      const tune::Candidate cm = best_candidate_restricted(t, 0, paper_grid, hsw);
      exec::MwdParams pm = cm.params;
      auto mwd_eng = exec::make_mwd_engine(pm);
      fs.clear_fields();
      mwd_eng->run(fs, 2);
      std::printf("  t=%2d  spatial %8.2f MLUP/s   MWD %8.2f MLUP/s (%s)\n", t,
                  sp_eng->stats().mlups, mwd_eng->stats().mlups, pm.describe().c_str());
    }
  }
  return 0;
}
