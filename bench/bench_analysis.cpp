// Reproduces the paper's Sec. III analysis table: code balance, arithmetic
// intensity and the Eq. 10 bandwidth-bottleneck prediction for the naive,
// spatially blocked and diamond-tiled kernels — models first, then the same
// quantities "measured" by cache-simulator replay of the real access
// streams.
//
// Paper anchors:  B_C naive  = 1344 B/LUP (Eq. 8),  I = 0.18 flops/B
//                 B_C spatial = 1216 B/LUP (Eq. 9),  I = 0.20 flops/B
//                 Pmem = 50 GB/s / 1216 = 41 MLUP/s (Eq. 10)
//                 storage 640 B/cell, 248 flops/LUP
#include "common.hpp"

#include "grid/fieldset.hpp"

int main(int argc, char** argv) {
  using namespace emwd;
  using namespace emwd::bench;

  util::Cli cli;
  cli.add_flag("n", "scaled grid size for replay", "32");
  cli.add_flag("steps", "replay time steps", "3");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return 1;
  }
  const int n = static_cast<int>(cli.get_int("n", 32));
  const int steps = static_cast<int>(cli.get_int("steps", 3));

  banner("bench_analysis", "paper Sec. III analysis (Eqs. 8, 9, 10, 12)");

  std::printf("static properties:\n");
  std::printf("  arrays per cell        : %d (12 fields + 28 coefficients)\n",
              grid::FieldSet::num_arrays());
  std::printf("  bytes per cell         : %zu (paper: 640)\n",
              grid::FieldSet::bytes_per_cell());
  std::printf("  flops per LUP          : %d (paper: 248)\n\n", models::kFlopsPerLup);

  const models::Machine hsw = models::haswell18();

  util::Table model({"variant", "model B/LUP", "intensity flops/B", "Pmem MLUP/s @50GB/s"});
  model.add_row({"naive (Eq.8)", util::fmt_double(models::naive_bytes_per_lup(), 6),
                 util::fmt_double(models::intensity(models::naive_bytes_per_lup()), 3),
                 util::fmt_double(
                     models::pmem_mlups(hsw.bandwidth_bytes_per_s,
                                        models::naive_bytes_per_lup()),
                     4)});
  model.add_row({"spatial (Eq.9)", util::fmt_double(models::spatial_bytes_per_lup(), 6),
                 util::fmt_double(models::intensity(models::spatial_bytes_per_lup()), 3),
                 util::fmt_double(
                     models::pmem_mlups(hsw.bandwidth_bytes_per_s,
                                        models::spatial_bytes_per_lup()),
                     4)});
  for (int dw : {4, 8, 12, 16}) {
    const double bpl = models::diamond_bytes_per_lup(dw);
    model.add_row({"diamond dw=" + std::to_string(dw) + " (Eq.12)",
                   util::fmt_double(bpl, 6), util::fmt_double(models::intensity(bpl), 3),
                   util::fmt_double(models::pmem_mlups(hsw.bandwidth_bytes_per_s, bpl), 4)});
  }
  model.print(std::cout, "analytic code balance models");

  // Measured counterparts via cache-simulator replay.  The streaming cases
  // use a deliberately small LLC (layers do not fit); the diamond case a
  // tile-sized one.
  const grid::Extents g{n, n, n};
  util::Table meas({"variant", "LLC MiB", "measured B/LUP", "model B/LUP", "ratio"});
  {
    const std::uint64_t llc = 1ull << 16;
    const double bpl = measured_naive_bpl(g, llc, steps);
    meas.add_row({"naive", util::fmt_double(llc / 1048576.0, 3), util::fmt_double(bpl, 6),
                  util::fmt_double(models::naive_bytes_per_lup(), 6),
                  util::fmt_double(bpl / models::naive_bytes_per_lup(), 3)});
  }
  {
    const std::uint64_t llc = 1ull << 18;
    const double bpl = measured_spatial_bpl(g, /*block_y=*/8, llc, steps);
    meas.add_row({"spatial by=8", util::fmt_double(llc / 1048576.0, 3),
                  util::fmt_double(bpl, 6),
                  util::fmt_double(models::spatial_bytes_per_lup(), 6),
                  util::fmt_double(bpl / models::spatial_bytes_per_lup(), 3)});
  }
  for (int dw : {4, 8}) {
    exec::MwdParams p;
    p.dw = dw;
    p.bz = 2;
    const std::uint64_t llc = scaled_haswell().llc_bytes;
    const double bpl = measured_mwd_bpl(g, p, llc, 2 * dw);
    const double m = models::diamond_bytes_per_lup(dw);
    meas.add_row({"diamond dw=" + std::to_string(dw),
                  util::fmt_double(llc / 1048576.0, 3), util::fmt_double(bpl, 6),
                  util::fmt_double(m, 6), util::fmt_double(bpl / m, 3)});
  }
  meas.print(std::cout, "cache-simulator measured code balance");

  std::printf("paper check: spatial prediction %.1f MLUP/s vs paper's measured ~40.\n",
              models::pmem_mlups(hsw.bandwidth_bytes_per_s,
                                 models::spatial_bytes_per_lup()));
  return 0;
}
